// The deep invariant auditor (data/audit.h) exists to catch exactly the
// corruptions the delta protocols could introduce. These tests prove it
// does: each test hand-plants one targeted inconsistency — a dangling
// arena offset, a stale key-index entry, a split component — through the
// TestCorruptor friend, and asserts the auditor both reports it and
// names the right structure. Plus the clean-path contracts: a healthy
// tree audits clean with a nonzero check count, and the Service entry
// point surfaces cumulative counters in Stats().

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "algo/dynamic_components.h"
#include "api/service.h"
#include "base/lru.h"
#include "data/audit.h"
#include "data/database.h"
#include "data/prepared.h"
#include "query/query.h"

namespace cqa {

// Friend of Database, PreparedDatabase, and DynamicComponents: plants one
// precise inconsistency per method, leaving everything else intact so a
// report naming the corrupted structure is evidence of pinpointing, not
// of cascade.
class TestCorruptor {
 public:
  /// Dangling arena offset: slot `id`'s span no longer starts where the
  /// dense layout says it must.
  static void BumpArenaOffset(Database& db, FactId id) {
    db.slots_[id].offset += 1;
  }

  /// Tombstones the slot behind the accounting's back (num_alive_ and the
  /// indexes still believe it is alive).
  static void FlipAlive(Database& db, FactId id) {
    db.alive_[id] = db.alive_[id] ? 0 : 1;
  }

  /// Stale content index: fact `id` vanishes from its hash bucket, so
  /// probing its own tuple finds nothing (the next identical insert would
  /// duplicate it).
  static void DropContentIndexEntry(Database& db, FactId id) {
    for (auto& [hash, bucket] : db.fact_index_) {
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i] != id) continue;
        bucket.erase(bucket.begin() + i);
        if (bucket.empty()) db.fact_index_.erase(hash);
        return;
      }
    }
    FAIL() << "fact " << id << " not in the content index";
  }

  /// Stale key index: block `b`'s key no longer routes to it, so the next
  /// same-key insert would open a duplicate block.
  static void DropKeyIndexEntry(Database& db, BlockId b) {
    db.EraseBlockIndexEntry(b);
  }

  /// Per-fact block mapping out of step with the partition.
  static void MisfileBlockOf(Database& db, FactId id) {
    db.block_of_[id] = db.block_of_[id] + 1;
  }

  /// Position index lies about where `id` sits in its relation list —
  /// the exact corruption that would make a later ApplyRemove patch the
  /// wrong slot.
  static void CorruptPosition(PreparedDatabase& pdb, FactId id) {
    pdb.pos_in_relation_[id] += 1;
  }

  /// Relation list loses its last fact (a botched ApplyInsert).
  static void DropFromRelationList(PreparedDatabase& pdb, RelationId r) {
    ASSERT_FALSE(pdb.facts_by_relation_[r].empty());
    pdb.facts_by_relation_[r].pop_back();
  }

  /// Splits one multi-member component: a non-root member is moved into a
  /// fresh singleton (union-find and member lists both rewritten, so the
  /// corruption is internally coherent and only the partition itself —
  /// and the stale fingerprints — give it away).
  static void SplitComponent(DynamicComponents& comps, const Database& db) {
    for (auto& [root, comp] : comps.components_) {
      if (comp.members.size() < 2) continue;
      FactId moved = comp.members.back();
      if (moved == root) moved = comp.members.front();
      auto& members = comp.members;
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (members[i] == moved) {
          members[i] = members.back();
          members.pop_back();
          break;
        }
      }
      comps.parent_[moved] = moved;
      DynamicComponents::Component single;
      single.members = {moved};
      single.min_member = moved;
      single.fingerprint.Add(db, moved);
      comps.components_.emplace(moved, std::move(single));
      return;
    }
    FAIL() << "no component with two members to split";
  }

  /// Fingerprint drifts from the member content it is supposed to digest.
  static void CorruptFingerprint(DynamicComponents& comps) {
    ASSERT_FALSE(comps.components_.empty());
    comps.components_.begin()->second.fingerprint.sum ^= 1;
  }
};

namespace {

// One fixture-built world per corruption: a query with chained joins so
// components have several members, enough facts that every structure is
// populated.
struct World {
  ConjunctiveQuery q;
  Database db;
  PreparedDatabase pdb;
  DynamicComponents comps;

  World()
      : q(ParseQuery("R(x | y) R(y | z)")),
        db(MakeDb(q)),
        pdb(db),
        comps(q, pdb) {}

  static Database MakeDb(const ConjunctiveQuery& q) {
    Database db(q.schema());
    db.AddFactStr(0, "a b");
    db.AddFactStr(0, "b c");
    db.AddFactStr(0, "b d");  // Key b: two candidates (a real block).
    db.AddFactStr(0, "c d");
    db.AddFactStr(0, "e f");  // Disconnected from the a-b-c-d cluster.
    (void)db.blocks();        // Force the partition + key index.
    return db;
  }

  AuditReport AuditAll() const {
    AuditReport report = AuditDatabase(db);
    report.Merge(AuditPrepared(pdb));
    report.Merge(AuditComponents(q, pdb, comps));
    return report;
  }
};

TEST(AuditTest, CleanWorldAuditsClean) {
  World w;
  AuditReport report = w.AuditAll();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.checks, 50u);  // "clean" must mean "checked", not "skipped".
  EXPECT_EQ(report.ToString().find("audit clean"), 0u);
}

TEST(AuditTest, DanglingArenaOffsetIsPinpointed) {
  World w;
  TestCorruptor::BumpArenaOffset(w.db, 2);
  AuditReport report = AuditDatabase(w.db);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Names("arena")) << report.ToString();
}

TEST(AuditTest, AliveAccountingDriftIsPinpointed) {
  World w;
  TestCorruptor::FlipAlive(w.db, 1);
  AuditReport report = AuditDatabase(w.db);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Names("slots")) << report.ToString();
}

TEST(AuditTest, MissingContentIndexEntryIsPinpointed) {
  World w;
  TestCorruptor::DropContentIndexEntry(w.db, 3);
  AuditReport report = AuditDatabase(w.db);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Names("content-index")) << report.ToString();
}

TEST(AuditTest, StaleKeyIndexEntryIsPinpointed) {
  World w;
  TestCorruptor::DropKeyIndexEntry(w.db, 0);
  AuditReport report = AuditDatabase(w.db);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Names("key-index")) << report.ToString();
}

TEST(AuditTest, MisfiledBlockMappingIsPinpointed) {
  World w;
  TestCorruptor::MisfileBlockOf(w.db, 0);
  AuditReport report = AuditDatabase(w.db);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Names("blocks")) << report.ToString();
}

TEST(AuditTest, CorruptPositionIndexIsPinpointed) {
  World w;
  TestCorruptor::CorruptPosition(w.pdb, 2);
  AuditReport report = AuditPrepared(w.pdb);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Names("prepared")) << report.ToString();
  // The corruption is invisible to the database's own auditor: proof the
  // reports pinpoint rather than cross-contaminate.
  EXPECT_TRUE(AuditDatabase(w.db).ok());
}

TEST(AuditTest, DroppedRelationListEntryIsPinpointed) {
  World w;
  TestCorruptor::DropFromRelationList(w.pdb, 0);
  AuditReport report = AuditPrepared(w.pdb);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Names("prepared")) << report.ToString();
}

TEST(AuditTest, SplitComponentIsPinpointed) {
  World w;
  ASSERT_GT(w.comps.NumComponents(), 1u);
  std::size_t before = w.comps.NumComponents();
  TestCorruptor::SplitComponent(w.comps, w.db);
  ASSERT_EQ(w.comps.NumComponents(), before + 1);
  AuditReport report = AuditComponents(w.q, w.pdb, w.comps);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Names("components")) << report.ToString();
  // Database and prepared auditors stay clean: the split lives only in
  // the component layer.
  EXPECT_TRUE(AuditDatabase(w.db).ok());
  EXPECT_TRUE(AuditPrepared(w.pdb).ok());
}

TEST(AuditTest, StaleFingerprintIsPinpointed) {
  World w;
  TestCorruptor::CorruptFingerprint(w.comps);
  AuditReport report = AuditComponents(w.q, w.pdb, w.comps);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Names("components")) << report.ToString();
}

TEST(AuditTest, ReportMergeAndOverflowAccounting) {
  AuditReport a;
  a.checks = 5;
  for (int i = 0; i < 100; ++i) a.Add("arena", "violation " + std::to_string(i));
  EXPECT_EQ(a.total_violations, 100u);
  EXPECT_EQ(a.violations.size(), AuditReport::kMaxRecorded);

  AuditReport b;
  b.checks = 7;
  b.Add("lru", "one more");
  a.Merge(b);
  EXPECT_EQ(a.total_violations, 101u);
  EXPECT_EQ(a.checks, 12u);
  EXPECT_TRUE(a.Names("arena"));
  EXPECT_FALSE(a.Names("lru"));  // Dropped past the recording cap.
  EXPECT_NE(a.ToString().find("more not recorded"), std::string::npos);
}

TEST(AuditTest, LruAuditInvariantsCleanOnHealthyCache) {
  LruCache<int, std::string> cache(CacheOptions{/*max_entries=*/3});
  cache.Insert(1, "a", 10);
  cache.Insert(2, "b", 20);
  cache.Insert(3, "c", 30);
  cache.Insert(4, "d", 40);  // Evicts 1.
  std::vector<std::string> messages;
  std::size_t violations =
      cache.AuditInvariants([&](const std::string& m) { messages.push_back(m); });
  EXPECT_EQ(violations, 0u) << (messages.empty() ? "" : messages.front());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.bytes(), 90u);
}

TEST(AuditTest, ServiceEntryPointAuditsAndCounts) {
  Service service;
  auto q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());
  Database db(q->query().schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  db.AddFactStr(0, "b d");
  ASSERT_TRUE(service.RegisterDatabase("db", std::move(db)).ok());
  ASSERT_TRUE(service.Solve(*q, "db").ok());  // Populates a solver + cache.

  StatusOr<AuditReport> report = service.AuditDatabase("db");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->ToString();
  EXPECT_GT(report->checks, 0u);

  StatusOr<AuditReport> missing = service.AuditDatabase("nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  ServiceStats stats = service.Stats();
  ASSERT_EQ(stats.databases.size(), 1u);
  EXPECT_EQ(stats.databases[0].audits_run, 1u);
  EXPECT_EQ(stats.databases[0].audit_violations, 0u);
  EXPECT_NE(stats.ToString().find("audits: runs=1"), std::string::npos);
}

}  // namespace
}  // namespace cqa
