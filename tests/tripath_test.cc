// Tests for the tripath machinery (Section 7): g(e), the validator on
// hand-built structures (including the Figure 1c nice fork-tripath of q2),
// and the bounded searcher on the paper's catalog.

#include <gtest/gtest.h>

#include <algorithm>

#include "query/eval.h"
#include "query/query.h"
#include "tripath/search.h"
#include "tripath/tripath.h"
#include "tripath/validate.h"

namespace cqa {
namespace {

constexpr const char* kQ2 = "R(x, u | x, y) R(u, y | x, z)";
constexpr const char* kQ5 = "R(x | y, x) R(y | x, u)";
constexpr const char* kQ6 = "R(x | y, z) R(z | x, y)";

/// Builds the Figure 1c tripath of q2 by hand (13 facts, 8 blocks).
/// Blocks:           root {F7} -> {F5,F6} -> center {F1,F4}
///   d-branch: center -> {F2,F10} -> {F11,F12} -> leaf {F13}
///   f-branch: center -> {F3,F8} -> leaf {F9}
Tripath Figure1cTripath(const ConjunctiveQuery& q2) {
  Database db(q2.schema());
  FactId f1 = db.AddFactStr(0, "a b a a");   // e = a(center)
  FactId f2 = db.AddFactStr(0, "a a a b");   // d = b(child1)
  FactId f3 = db.AddFactStr(0, "b a a a");   // f = b(child2)
  FactId f4 = db.AddFactStr(0, "a b c a");   // b(center)
  FactId f5 = db.AddFactStr(0, "c a c b");   // a(up1)
  FactId f6 = db.AddFactStr(0, "c a h a");   // b(up1)
  FactId f7 = db.AddFactStr(0, "h c h a");   // u0 = a(root)
  FactId f8 = db.AddFactStr(0, "b a f a");   // a(f-branch block)
  FactId f9 = db.AddFactStr(0, "f b f a");   // u2 = b(leaf2)
  FactId f10 = db.AddFactStr(0, "a a d a");  // a(d-branch block 1)
  FactId f11 = db.AddFactStr(0, "d a d a");  // b(d-branch block 2)
  FactId f12 = db.AddFactStr(0, "d a e a");  // a(d-branch block 2)
  FactId f13 = db.AddFactStr(0, "e d e a");  // u1 = b(leaf1)

  Tripath t(std::move(db));
  auto block = [&](int parent, FactId a, FactId b) {
    t.blocks.push_back(TripathBlock{parent, a, b});
    return static_cast<int>(t.blocks.size()) - 1;
  };
  const FactId kNone = TripathBlock::kNoFact;
  int center = block(-1, f1, f4);
  int up1 = block(-1, f5, f6);
  int root = block(-1, f7, kNone);
  t.blocks[center].parent = up1;
  t.blocks[up1].parent = root;
  int d1 = block(center, f10, f2);
  int d2 = block(d1, f12, f11);
  int leaf1 = block(d2, kNone, f13);
  int fb = block(center, f8, f3);
  int leaf2 = block(fb, kNone, f9);
  t.root = root;
  t.center = center;
  t.leaf1 = leaf1;
  t.leaf2 = leaf2;
  t.d = f2;
  t.e = f1;
  t.f = f3;
  return t;
}

TEST(GOfE, Case1KeyDInsideKeyE) {
  auto q2 = ParseQuery(kQ2);
  Tripath t = Figure1cTripath(q2);
  // key(d) = {a} ⊆ key(e) = {a, b}; key(f) = {b, a} ⊆ key(e) and
  // key(d) ⊆ key(f): case 3 of the definition gives g(e) = key(d) = {a}.
  auto g = ComputeGOfE(t.db, t.d, t.e, t.f);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(t.db.elements().Name(g[0]), "a");
}

TEST(GOfE, DefaultCaseIsKeyE) {
  auto q6 = ParseQuery(kQ6);
  Database db(q6.schema());
  FactId d = db.AddFactStr(0, "p a b");
  FactId e = db.AddFactStr(0, "q c d");
  FactId f = db.AddFactStr(0, "r e f");
  auto g = ComputeGOfE(db, d, e, f);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(db.elements().Name(g[0]), "q");
}

TEST(Validator, Figure1cIsValidNiceFork) {
  auto q2 = ParseQuery(kQ2);
  Tripath t = Figure1cTripath(q2);
  TripathValidation v = ValidateTripath(q2, t);
  EXPECT_TRUE(v.valid) << v.error;
  EXPECT_FALSE(v.triangle);
  EXPECT_TRUE(v.variable_nice);
  EXPECT_TRUE(v.solution_nice);
  EXPECT_TRUE(v.nice);
  // x = y = z = a in the paper's example.
  EXPECT_EQ(t.db.elements().Name(v.x), "a");
  EXPECT_EQ(t.db.elements().Name(v.y), "a");
  EXPECT_EQ(t.db.elements().Name(v.z), "a");
}

TEST(Validator, RejectsMissingEdgeSolution) {
  auto q2 = ParseQuery(kQ2);
  Tripath t = Figure1cTripath(q2);
  Tripath broken = t;
  // Replace u0 = R(h c | h a) with R(h c | qq qq): key-equal, no solution.
  Database db2(q2.schema());
  for (FactId fid = 0; fid < t.db.NumFacts(); ++fid) {
    FactRef fact = t.db.fact(fid);
    std::vector<ElementId> args;
    for (ElementId el : fact.args) {
      args.push_back(db2.elements().Intern(t.db.elements().Name(el)));
    }
    if (fid == t.blocks[t.root].a) {
      args[2] = db2.elements().Intern("qq");
      args[3] = db2.elements().Intern("qq");
    }
    db2.AddFact(fact.relation, std::move(args));
  }
  broken.db = std::move(db2);
  TripathValidation v = ValidateTripath(q2, broken);
  EXPECT_FALSE(v.valid);
  EXPECT_FALSE(v.error.empty());
}

TEST(Validator, RejectsBadTreeShape) {
  auto q2 = ParseQuery(kQ2);
  Tripath t = Figure1cTripath(q2);
  Tripath broken = t;
  broken.blocks[broken.leaf1].parent = broken.root;  // Root gets a child.
  TripathValidation v = ValidateTripath(q2, broken);
  EXPECT_FALSE(v.valid);
}

TEST(Validator, RejectsWrongCenterFacts) {
  auto q2 = ParseQuery(kQ2);
  Tripath t = Figure1cTripath(q2);
  Tripath broken = t;
  std::swap(broken.d, broken.f);  // q(d e) / q(e f) no longer directed.
  TripathValidation v = ValidateTripath(q2, broken);
  EXPECT_FALSE(v.valid);
}

// --- Searcher on the paper's catalog ---------------------------------------

TEST(Search, Q2AdmitsForkTripath) {
  auto q2 = ParseQuery(kQ2);
  TripathSearchResult r = SearchTripaths(q2);
  ASSERT_TRUE(r.HasFork());
  // The searcher's witness must independently validate.
  TripathValidation v = ValidateTripath(q2, r.fork->tripath);
  EXPECT_TRUE(v.valid) << v.error;
  EXPECT_FALSE(v.triangle);
}

TEST(Search, Q2AdmitsNiceForkTripath) {
  auto q2 = ParseQuery(kQ2);
  auto nice = FindNiceForkTripath(q2);
  ASSERT_TRUE(nice.has_value());
  EXPECT_TRUE(nice->validation.nice);
  TripathValidation v = ValidateTripath(q2, nice->tripath);
  EXPECT_TRUE(v.valid) << v.error;
  EXPECT_TRUE(v.nice);
  EXPECT_FALSE(v.triangle);
}

TEST(Search, Q5AdmitsNoTripath) {
  auto q5 = ParseQuery(kQ5);
  TripathSearchResult r = SearchTripaths(q5);
  EXPECT_FALSE(r.HasFork());
  EXPECT_FALSE(r.HasTriangle());
  EXPECT_TRUE(r.exhausted);
}

TEST(Search, Q6AdmitsTriangleButNoFork) {
  auto q6 = ParseQuery(kQ6);
  TripathSearchResult r = SearchTripaths(q6);
  ASSERT_TRUE(r.HasTriangle());
  EXPECT_FALSE(r.HasFork());
  EXPECT_TRUE(r.exhausted);
  TripathValidation v = ValidateTripath(q6, r.triangle->tripath);
  EXPECT_TRUE(v.valid) << v.error;
  EXPECT_TRUE(v.triangle);
}

TEST(Search, TriangleCenterFormsTriangleSolution) {
  auto q6 = ParseQuery(kQ6);
  TripathSearchResult r = SearchTripaths(q6);
  ASSERT_TRUE(r.HasTriangle());
  const Tripath& t = r.triangle->tripath;
  RelationBinding binding(q6, t.db);
  EXPECT_TRUE(IsSolution(q6, binding, t.db, t.d, t.e));
  EXPECT_TRUE(IsSolution(q6, binding, t.db, t.e, t.f));
  EXPECT_TRUE(IsSolution(q6, binding, t.db, t.f, t.d));
}

TEST(Search, ForkWitnessSatisfiesGCondition) {
  auto q2 = ParseQuery(kQ2);
  TripathSearchResult r = SearchTripaths(q2);
  ASSERT_TRUE(r.HasFork());
  const Tripath& t = r.fork->tripath;
  auto g = ComputeGOfE(t.db, t.d, t.e, t.f);
  for (FactId u : {t.u0(), t.u1(), t.u2()}) {
    auto key = KeyElementSet(t.db, u);
    bool subset = std::includes(key.begin(), key.end(), g.begin(), g.end());
    EXPECT_FALSE(subset);
  }
}

TEST(Search, CandidateCountIsReported) {
  auto q5 = ParseQuery(kQ5);
  TripathSearchResult r = SearchTripaths(q5);
  // q5's center is degenerate under every partition, so zero candidates
  // reach the validator.
  EXPECT_EQ(r.candidates, 0u);
}

TEST(Search, RespectsCandidateBudget) {
  auto q2 = ParseQuery(kQ2);
  TripathSearchLimits limits;
  limits.max_candidates = 1;
  TripathSearchGoals goals;
  goals.fork = true;
  goals.triangle = true;
  goals.nice_fork = true;  // Unreachable in 1 candidate.
  TripathSearchResult r = SearchTripaths(q2, limits, goals);
  EXPECT_FALSE(r.exhausted);
  EXPECT_LE(r.candidates, 1u);
}

}  // namespace
}  // namespace cqa
