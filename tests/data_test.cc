// Unit tests for src/data: schemas, facts, databases, blocks, repairs.

#include <gtest/gtest.h>

#include <set>

#include "data/database.h"
#include "data/repair.h"
#include "data/schema.h"

namespace cqa {
namespace {

Schema OneRelation(std::uint32_t arity, std::uint32_t key_len) {
  Schema s;
  s.AddRelation("R", arity, key_len);
  return s;
}

TEST(Schema, AddAndFind) {
  Schema s;
  RelationId r = s.AddRelation("R", 3, 1);
  EXPECT_EQ(s.Find("R"), r);
  EXPECT_EQ(s.Find("S"), Schema::kNotFound);
  EXPECT_EQ(s.Relation(r).arity, 3u);
  EXPECT_EQ(s.Relation(r).key_len, 1u);
  EXPECT_EQ(s.NumRelations(), 1u);
}

TEST(Schema, MultipleRelations) {
  Schema s;
  RelationId r1 = s.AddRelation("R1", 2, 1);
  RelationId r2 = s.AddRelation("R2", 2, 2);
  EXPECT_NE(r1, r2);
  EXPECT_EQ(s.NumRelations(), 2u);
}

TEST(Database, AddFactDeduplicates) {
  Database db(OneRelation(2, 1));
  FactId a = db.AddFactStr(0, "x y");
  FactId b = db.AddFactStr(0, "x y");
  EXPECT_EQ(a, b);
  EXPECT_EQ(db.NumFacts(), 1u);
}

TEST(Database, DistinctFactsGetDistinctIds) {
  Database db(OneRelation(2, 1));
  FactId a = db.AddFactStr(0, "x y");
  FactId b = db.AddFactStr(0, "x z");
  EXPECT_NE(a, b);
  EXPECT_EQ(db.NumFacts(), 2u);
}

TEST(Database, KeyOfTakesPrefix) {
  Database db(OneRelation(3, 2));
  FactId f = db.AddFactStr(0, "a b c");
  auto key = db.KeyOf(f);
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(db.elements().Name(key[0]), "a");
  EXPECT_EQ(db.elements().Name(key[1]), "b");
}

TEST(Database, KeyEqualSameKeyDifferentRest) {
  Database db(OneRelation(3, 1));
  FactId a = db.AddFactStr(0, "k p q");
  FactId b = db.AddFactStr(0, "k r s");
  FactId c = db.AddFactStr(0, "m p q");
  EXPECT_TRUE(db.KeyEqual(a, b));
  EXPECT_FALSE(db.KeyEqual(a, c));
}

TEST(Database, BlocksPartitionFacts) {
  Database db(OneRelation(2, 1));
  db.AddFactStr(0, "k1 a");
  db.AddFactStr(0, "k1 b");
  db.AddFactStr(0, "k2 a");
  ASSERT_EQ(db.blocks().size(), 2u);
  std::size_t total = 0;
  for (const Block& b : db.blocks()) total += b.facts.size();
  EXPECT_EQ(total, 3u);
}

TEST(Database, BlockOfIsConsistentWithBlocks) {
  Database db(OneRelation(2, 1));
  FactId a = db.AddFactStr(0, "k1 a");
  FactId b = db.AddFactStr(0, "k1 b");
  FactId c = db.AddFactStr(0, "k2 c");
  EXPECT_EQ(db.BlockOf(a), db.BlockOf(b));
  EXPECT_NE(db.BlockOf(a), db.BlockOf(c));
}

TEST(Database, BlockIndexRefreshesAfterInsert) {
  Database db(OneRelation(2, 1));
  db.AddFactStr(0, "k a");
  EXPECT_EQ(db.blocks().size(), 1u);
  db.AddFactStr(0, "m b");
  EXPECT_EQ(db.blocks().size(), 2u);
}

TEST(Database, EmptyKeyMakesOneBlock) {
  Database db(OneRelation(2, 0));
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "c d");
  EXPECT_EQ(db.blocks().size(), 1u);
  EXPECT_EQ(db.blocks()[0].facts.size(), 2u);
}

TEST(Database, ConsistencyDetection) {
  Database db(OneRelation(2, 1));
  db.AddFactStr(0, "k1 a");
  db.AddFactStr(0, "k2 b");
  EXPECT_TRUE(db.IsConsistent());
  db.AddFactStr(0, "k1 c");
  EXPECT_FALSE(db.IsConsistent());
}

TEST(Database, CountRepairsMultipliesBlockSizes) {
  Database db(OneRelation(2, 1));
  db.AddFactStr(0, "k1 a");
  db.AddFactStr(0, "k1 b");
  db.AddFactStr(0, "k2 a");
  db.AddFactStr(0, "k2 b");
  db.AddFactStr(0, "k2 c");
  EXPECT_DOUBLE_EQ(db.CountRepairs(), 6.0);
}

TEST(Database, FactToStringShowsKeyBar) {
  Database db(OneRelation(3, 1));
  FactId f = db.AddFactStr(0, "a b c");
  EXPECT_EQ(db.FactToString(f), "R(a | b, c)");
}

TEST(Database, FindFactAndContains) {
  Database db(OneRelation(2, 1));
  FactId f = db.AddFactStr(0, "a b");
  Fact probe{0, {db.elements().Find("a"), db.elements().Find("b")}};
  EXPECT_TRUE(db.Contains(probe));
  EXPECT_EQ(db.FindFact(probe), f);
  Fact missing{0, {db.elements().Find("b"), db.elements().Find("a")}};
  EXPECT_FALSE(db.Contains(missing));
  EXPECT_EQ(db.FindFact(missing), Database::kNoFact);
}

TEST(Database, BlocksSeparatedByRelation) {
  Schema s;
  s.AddRelation("R1", 2, 1);
  s.AddRelation("R2", 2, 1);
  Database db(s);
  db.AddFactStr(0, "k a");
  db.AddFactStr(1, "k a");
  // Same key tuple but different relations: two blocks.
  EXPECT_EQ(db.blocks().size(), 2u);
}

TEST(RepairIterator, EnumeratesAllRepairs) {
  Database db(OneRelation(2, 1));
  db.AddFactStr(0, "k1 a");
  db.AddFactStr(0, "k1 b");
  db.AddFactStr(0, "k2 a");
  db.AddFactStr(0, "k2 b");
  db.AddFactStr(0, "k2 c");
  std::set<std::vector<FactId>> seen;
  int count = 0;
  for (RepairIterator it(db); it.HasValue(); it.Next()) {
    seen.insert(it.Current().Facts());
    ++count;
  }
  EXPECT_EQ(count, 6);
  EXPECT_EQ(seen.size(), 6u);  // All distinct.
}

TEST(RepairIterator, EmptyDatabaseHasOneRepair) {
  Database db(OneRelation(2, 1));
  int count = 0;
  for (RepairIterator it(db); it.HasValue(); it.Next()) ++count;
  EXPECT_EQ(count, 1);
}

TEST(RepairIterator, RepairsPickOnePerBlock) {
  Database db(OneRelation(2, 1));
  db.AddFactStr(0, "k1 a");
  db.AddFactStr(0, "k1 b");
  db.AddFactStr(0, "k2 c");
  for (RepairIterator it(db); it.HasValue(); it.Next()) {
    Repair r = it.Current();
    std::set<BlockId> blocks;
    for (FactId f : r.Facts()) blocks.insert(db.BlockOf(f));
    EXPECT_EQ(blocks.size(), db.blocks().size());
  }
}

TEST(Repair, ContainsAndSelect) {
  Database db(OneRelation(2, 1));
  FactId a = db.AddFactStr(0, "k1 a");
  FactId b = db.AddFactStr(0, "k1 b");
  RepairIterator it(db);
  Repair r = it.Current();
  EXPECT_TRUE(r.Contains(a));
  EXPECT_FALSE(r.Contains(b));
  r.Select(b);  // The paper's r[a -> b] operation.
  EXPECT_FALSE(r.Contains(a));
  EXPECT_TRUE(r.Contains(b));
}

TEST(RepairSampler, DeterministicGivenSeed) {
  Database db(OneRelation(2, 1));
  db.AddFactStr(0, "k1 a");
  db.AddFactStr(0, "k1 b");
  db.AddFactStr(0, "k2 a");
  db.AddFactStr(0, "k2 b");
  RepairSampler s1(db, 99);
  RepairSampler s2(db, 99);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(s1.Sample().Facts(), s2.Sample().Facts());
  }
}

TEST(ArgArena, OffsetsAreMonotoneAndDenseOnAppend) {
  Database db(OneRelation(3, 1));
  for (int i = 0; i < 16; ++i) {
    db.AddFactStr(0, "k" + std::to_string(i / 4) + " a" + std::to_string(i) +
                         " b" + std::to_string(i));
  }
  // Append-only: each fact's span starts where the previous one ended.
  for (FactId f = 0; f < db.NumFacts(); ++f) {
    EXPECT_EQ(db.ArgOffsetOf(f), f * 3u);
  }
  EXPECT_EQ(db.ArgArenaSize(), db.NumFacts() * 3u);
}

TEST(ArgArena, FactRefViewsIntoArenaAndMaterializes) {
  Database db(OneRelation(2, 1));
  FactId f = db.AddFactStr(0, "x y");
  FactRef ref = db.fact(f);
  EXPECT_EQ(ref.relation, 0u);
  EXPECT_EQ(ref.args.size(), 2u);
  Fact owned = db.MaterializeFact(f);
  EXPECT_TRUE(FactRef(owned) == ref);
  EXPECT_EQ(db.FindFact(owned), f);
}

TEST(KeyViewTest, ViewMatchesOwnedKey) {
  Database db(OneRelation(3, 2));
  FactId f = db.AddFactStr(0, "a b c");
  KeyView view = db.KeyViewOf(f);
  std::vector<ElementId> owned = db.KeyOf(f);
  ASSERT_EQ(view.size(), owned.size());
  for (std::uint32_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i], owned[i]);
  }
  EXPECT_EQ(view.data, db.fact(f).args.data);  // No copy.
}

TEST(KeyViewTest, KeyEqualAgreesWithViews) {
  Database db(OneRelation(3, 2));
  FactId a = db.AddFactStr(0, "k1 k2 x");
  FactId b = db.AddFactStr(0, "k1 k2 y");
  FactId c = db.AddFactStr(0, "k1 k3 x");
  EXPECT_TRUE(db.KeyEqual(a, b));
  EXPECT_FALSE(db.KeyEqual(a, c));
  EXPECT_TRUE(db.KeyViewOf(a) == db.KeyViewOf(b));
  EXPECT_TRUE(db.KeyViewOf(a) != db.KeyViewOf(c));
}

TEST(KeyViewTest, ZeroLengthKeys) {
  Database db(OneRelation(2, 0));
  FactId a = db.AddFactStr(0, "x y");
  FactId b = db.AddFactStr(0, "u v");
  EXPECT_TRUE(db.KeyViewOf(a).empty());
  // With an empty key all facts of the relation are key-equal (one block).
  EXPECT_TRUE(db.KeyEqual(a, b));
  EXPECT_EQ(db.blocks().size(), 1u);
}

TEST(RepairSampler, SamplesAreValidRepairs) {
  Database db(OneRelation(2, 1));
  db.AddFactStr(0, "k1 a");
  db.AddFactStr(0, "k1 b");
  db.AddFactStr(0, "k1 c");
  db.AddFactStr(0, "k2 a");
  RepairSampler sampler(db, 5);
  for (int i = 0; i < 50; ++i) {
    Repair r = sampler.Sample();
    EXPECT_EQ(r.Facts().size(), db.blocks().size());
  }
}

}  // namespace
}  // namespace cqa
