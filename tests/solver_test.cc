// End-to-end tests for the CertainSolver dispatcher: across the paper's
// catalog and random instances, the dispatched polynomial algorithms must
// agree with the exhaustive ground truth, and the dispatcher must pick the
// algorithm the dichotomy prescribes.

#include <gtest/gtest.h>

#include <string>

#include "algo/exhaustive.h"
#include "algo/trivial.h"
#include "base/check.h"
#include "base/rng.h"
#include "engine/solver.h"
#include "gen/workloads.h"

#include "make_solver.h"
#include "query/query.h"

namespace cqa {
namespace {


struct CatalogEntry {
  const char* text;
  SolverAlgorithm expected_algorithm;
};

class SolverCatalogTest : public ::testing::TestWithParam<CatalogEntry> {};

TEST_P(SolverCatalogTest, DispatchesExpectedAlgorithm) {
  CertainSolver solver = MakeSolver(ParseQuery(GetParam().text));
  Database db(solver.query().schema());
  SolverAnswer answer = solver.Solve(db);
  EXPECT_EQ(answer.algorithm, GetParam().expected_algorithm);
}

TEST_P(SolverCatalogTest, AgreesWithGroundTruthOnRandomInstances) {
  auto q = ParseQuery(GetParam().text);
  CertainSolver solver = MakeSolver(q);
  Rng rng(0xD15C0);
  for (int round = 0; round < 40; ++round) {
    InstanceParams params;
    params.num_facts = 12;
    params.domain_size = 3;
    Database db = RandomInstance(q, params, &rng);
    bool expected = CertainByEnumeration(q, db);
    bool actual = solver.Solve(db).certain;
    EXPECT_EQ(actual, expected) << db.ToString();
  }
}

// Deterministic certain instances so every dispatch path exercises its
// yes-branch (random q6/trivial workloads are almost never certain).
TEST(SolverYesBranch, Q6GluedTriangles) {
  auto q6 = ParseQuery("R(x | y, z) R(z | x, y)");
  CertainSolver solver = MakeSolver(q6);
  Database db(q6.schema());
  db.AddFactStr(0, "e1 e2 e3");
  db.AddFactStr(0, "e3 e1 e2");
  db.AddFactStr(0, "e2 e3 e1");
  db.AddFactStr(0, "e1 e3 e2");
  db.AddFactStr(0, "e2 e1 e3");
  db.AddFactStr(0, "e3 e2 e1");
  ASSERT_TRUE(CertainByEnumeration(q6, db));
  EXPECT_TRUE(solver.Solve(db).certain);
}

TEST(SolverYesBranch, TrivialHomQuery) {
  auto q = ParseQuery("R(x | y) R(y | y)");
  CertainSolver solver = MakeSolver(q);
  Database db(q.schema());
  db.AddFactStr(0, "c c");  // Singleton block matching R(y | y).
  db.AddFactStr(0, "a b");
  ASSERT_TRUE(CertainByEnumeration(q, db));
  EXPECT_TRUE(solver.Solve(db).certain);
}

TEST(SolverYesBranch, HardClassExhaustive) {
  auto q2 = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
  CertainSolver solver = MakeSolver(q2);
  Database db(q2.schema());
  // Single unavoidable solution: two singleton blocks.
  db.AddFactStr(0, "a b a c");
  db.AddFactStr(0, "b c a d");
  ASSERT_TRUE(CertainByEnumeration(q2, db));
  SolverAnswer answer = solver.Solve(db);
  EXPECT_TRUE(answer.certain);
  EXPECT_EQ(answer.algorithm, SolverAlgorithm::kExhaustive);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, SolverCatalogTest,
    ::testing::Values(
        CatalogEntry{"R(x, u | x, v) R(v, y | u, y)",
                     SolverAlgorithm::kExhaustive},  // q1
        CatalogEntry{"R(x, u | x, y) R(u, y | x, z)",
                     SolverAlgorithm::kExhaustive},  // q2
        CatalogEntry{"R(x | y) R(y | z)", SolverAlgorithm::kCert2},  // q3
        CatalogEntry{"R(x, x | u, v) R(x, y | u, x)",
                     SolverAlgorithm::kCert2},  // q4
        CatalogEntry{"R(x | y, x) R(y | x, u)",
                     SolverAlgorithm::kCertK},  // q5
        CatalogEntry{"R(x | y, z) R(z | x, y)",
                     SolverAlgorithm::kCertKOrMatching},  // q6
        CatalogEntry{"R(x | y) R(y | y)", SolverAlgorithm::kTrivialScan},
        CatalogEntry{"R(x, y | u) R(x, y | v)",
                     SolverAlgorithm::kTrivialScan}));

TEST(TrivialSolver, EqualKeysScan) {
  auto q = ParseQuery("R(x, y | u) R(x, y | v)");
  Database db(q.schema());
  db.AddFactStr(0, "a b c");
  // A single fact matches both atoms (u, v unconstrained): certain.
  EXPECT_TRUE(TrivialCertain(q, TrivialReason::kEqualKeys, db));
}

TEST(TrivialSolver, EqualKeysWithRepeats) {
  auto q = ParseQuery("R(x, y | x) R(x, y | y)");
  Database db(q.schema());
  db.AddFactStr(0, "a b a");  // Matches A (pos2 = x = a) but not B.
  EXPECT_FALSE(TrivialCertain(q, TrivialReason::kEqualKeys, db));
  db.AddFactStr(0, "c c c");  // Matches both; singleton block: certain.
  EXPECT_TRUE(TrivialCertain(q, TrivialReason::kEqualKeys, db));
}

TEST(TrivialSolver, HomCaseScansBlocks) {
  auto q = ParseQuery("R(x | y) R(y | y)");
  Database db(q.schema());
  db.AddFactStr(0, "a b");
  EXPECT_FALSE(TrivialCertain(q, TrivialReason::kHomToSingleAtom, db));
  db.AddFactStr(0, "c c");  // Matches B's pattern; singleton block.
  EXPECT_TRUE(TrivialCertain(q, TrivialReason::kHomToSingleAtom, db));
  db.AddFactStr(0, "c d");  // Escape for that block.
  EXPECT_FALSE(TrivialCertain(q, TrivialReason::kHomToSingleAtom, db));
}

TEST(TrivialSolver, MatchesExhaustiveOnRandomInstances) {
  for (const char* text : {"R(x | y) R(y | y)", "R(x, y | u) R(x, y | v)",
                           "R(x, y | x) R(x, y | y)"}) {
    auto q = ParseQuery(text);
    TrivialReason reason = ClassifyTrivial(q);
    ASSERT_NE(reason, TrivialReason::kNotTrivial) << text;
    Rng rng(0x7717);
    for (int round = 0; round < 30; ++round) {
      InstanceParams params;
      params.num_facts = 10;
      params.domain_size = 3;
      Database db = RandomInstance(q, params, &rng);
      EXPECT_EQ(TrivialCertain(q, reason, db), CertainByEnumeration(q, db))
          << text << "\n"
          << db.ToString();
    }
  }
}

TEST(Solver, ClassificationIsExposed) {
  CertainSolver solver = MakeSolver(ParseQuery("R(x | y, z) R(z | x, y)"));
  EXPECT_EQ(solver.classification().query_class,
            QueryClass::kPTimeTriangleOnly);
}

TEST(Solver, PracticalKIsConfigurable) {
  SolverOptions options;
  options.practical_k = 2;
  CertainSolver solver = MakeSolver(ParseQuery("R(x | y, x) R(y | x, u)"), options);
  Database db(solver.query().schema());
  db.AddFactStr(0, "a b a");
  EXPECT_FALSE(solver.Solve(db).certain);
}

}  // namespace
}  // namespace cqa
