// Unit tests for the durability layer (src/store): the binary codecs,
// the fault-injectable I/O primitives, and the DurableStore lifecycle.
// Every decoder here is exercised on both the round-trip path and on
// corrupt input — a torn tail, a flipped bit, a garbage length — where
// the contract is a *typed* kCorruptedData naming the failure, never an
// abort and never a silently half-loaded state.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "data/database.h"
#include "data/schema.h"
#include "store/format.h"
#include "store/io.h"
#include "store/snapshot.h"
#include "store/store.h"
#include "store/wal.h"

namespace cqa {
namespace store {
namespace {

// A unique directory under the test temp root, wiped before use so a
// rerun never sees a previous run's files.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "cqa_store_test_" + name;
  EXPECT_TRUE(RemoveDirRecursive(dir).ok());
  return dir;
}

Schema TwoRelationSchema() {
  Schema schema;
  schema.AddRelation("R", 2, 1);
  schema.AddRelation("S", 3, 2);
  return schema;
}

// Alive facts as (relation name, element names), in slot order — the
// content-level equality the snapshot round trip must preserve.
std::vector<std::pair<std::string, std::vector<std::string>>> NamedFacts(
    const Database& db) {
  std::vector<std::pair<std::string, std::vector<std::string>>> out;
  for (FactId id = 0; id < db.NumFacts(); ++id) {
    if (!db.alive(id)) continue;
    FactRef fact = db.fact(id);
    std::vector<std::string> args;
    for (ElementId el : fact.args) {
      args.emplace_back(db.elements().Name(el));
    }
    out.emplace_back(db.schema().Relation(fact.relation).name,
                     std::move(args));
  }
  return out;
}

// -- format.h ----------------------------------------------------------

TEST(Crc32Test, KnownVectorAndSensitivity) {
  // The IEEE 802.3 check value: CRC-32 of "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("abc"), Crc32("abd"));  // One flipped bit changes it.
}

TEST(ByteCodecTest, RoundTrip) {
  ByteWriter writer;
  writer.U8(0xAB);
  writer.U32(0xDEADBEEF);
  writer.U64(0x0123456789ABCDEFull);
  writer.Str("hello");
  writer.Str("");  // Empty strings are representable.
  std::string bytes = writer.Take();

  ByteReader reader(bytes);
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::string s1, s2;
  ASSERT_TRUE(reader.U8(&u8));
  ASSERT_TRUE(reader.U32(&u32));
  ASSERT_TRUE(reader.U64(&u64));
  ASSERT_TRUE(reader.Str(&s1));
  ASSERT_TRUE(reader.Str(&s2));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteCodecTest, ReadsPastEndFailWithoutMoving) {
  ByteWriter writer;
  writer.U32(7);
  std::string bytes = writer.Take();

  ByteReader reader(bytes);
  std::uint64_t u64 = 99;
  EXPECT_FALSE(reader.U64(&u64));  // Only 4 bytes remain.
  EXPECT_EQ(u64, 99u);             // Output untouched on failure.
  EXPECT_EQ(reader.pos(), 0u);     // Reader did not advance.

  std::uint32_t u32 = 0;
  ASSERT_TRUE(reader.U32(&u32));
  EXPECT_EQ(u32, 7u);
  EXPECT_FALSE(reader.Skip(1));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteCodecTest, OversizedStringPrefixFails) {
  // A length prefix claiming more bytes than remain must fail — this is
  // the check that keeps a corrupt length from forcing a huge read.
  ByteWriter writer;
  writer.U32(1000);  // Claims 1000 bytes...
  writer.U8('x');    // ...but only 1 follows.
  std::string bytes = writer.Take();

  ByteReader reader(bytes);
  std::string s = "unchanged";
  EXPECT_FALSE(reader.Str(&s));
  EXPECT_EQ(s, "unchanged");
}

// -- wal.h -------------------------------------------------------------

std::string WalFileOf(const std::vector<WalRecord>& records) {
  std::string bytes(kWalMagic);
  for (const WalRecord& r : records) bytes += EncodeWalRecord(r);
  return bytes;
}

std::vector<WalRecord> SampleRecords() {
  WalRecord insert;
  insert.seq = 1;
  insert.kind = WalRecord::Kind::kInsert;
  insert.facts = {{"R", {"a", "b"}}, {"S", {"a", "b", "c"}}};
  WalRecord erase;
  erase.seq = 2;
  erase.kind = WalRecord::Kind::kDelete;
  erase.facts = {{"R", {"a", "b"}}};
  return {insert, erase};
}

TEST(WalCodecTest, RoundTrip) {
  std::string bytes = WalFileOf(SampleRecords());
  WalDecodeResult result = DecodeWal(bytes);
  EXPECT_TRUE(result.tail.ok()) << result.tail.ToString();
  EXPECT_EQ(result.valid_bytes, bytes.size());
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].seq, 1u);
  EXPECT_EQ(result.records[0].kind, WalRecord::Kind::kInsert);
  ASSERT_EQ(result.records[0].facts.size(), 2u);
  EXPECT_EQ(result.records[0].facts[1].relation, "S");
  EXPECT_EQ(result.records[0].facts[1].args,
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(result.records[1].kind, WalRecord::Kind::kDelete);
}

TEST(WalCodecTest, EmptyAndHeaderOnlyFilesAreValid) {
  WalDecodeResult empty = DecodeWal("");
  EXPECT_TRUE(empty.tail.ok());
  EXPECT_TRUE(empty.records.empty());

  WalDecodeResult header_only = DecodeWal(std::string(kWalMagic));
  EXPECT_TRUE(header_only.tail.ok());
  EXPECT_TRUE(header_only.records.empty());
  EXPECT_EQ(header_only.valid_bytes, kWalMagic.size());
}

TEST(WalCodecTest, GarbageAndShortHeadersAreCorrupt) {
  WalDecodeResult garbage = DecodeWal("NOTAWAL0 trailing bytes");
  EXPECT_EQ(garbage.tail.code(), StatusCode::kCorruptedData);
  EXPECT_EQ(garbage.valid_bytes, 0u);

  WalDecodeResult shorter = DecodeWal("CQA");
  EXPECT_EQ(shorter.tail.code(), StatusCode::kCorruptedData);
}

TEST(WalCodecTest, TornTailStopsAtLastGoodRecord) {
  std::vector<WalRecord> records = SampleRecords();
  std::string bytes = WalFileOf(records);
  std::size_t first_end = kWalMagic.size() + EncodeWalRecord(records[0]).size();
  // Cut mid-way through the second record — a torn append.
  std::string torn = bytes.substr(0, first_end + 5);

  WalDecodeResult result = DecodeWal(torn);
  EXPECT_EQ(result.tail.code(), StatusCode::kCorruptedData);
  ASSERT_EQ(result.records.size(), 1u);  // The intact prefix survives.
  EXPECT_EQ(result.records[0].seq, 1u);
  EXPECT_EQ(result.valid_bytes, first_end);  // The truncation point.
}

TEST(WalCodecTest, BitFlipFailsTheChecksum) {
  std::vector<WalRecord> records = SampleRecords();
  std::string bytes = WalFileOf(records);
  bytes[bytes.size() - 1] ^= 0x01;  // Flip a bit in the last payload.

  WalDecodeResult result = DecodeWal(bytes);
  EXPECT_EQ(result.tail.code(), StatusCode::kCorruptedData);
  EXPECT_NE(result.tail.message().find("checksum"), std::string::npos)
      << result.tail.message();
  EXPECT_EQ(result.records.size(), 1u);
}

TEST(WalCodecTest, GarbageLengthIsCorruptNotAHugeAllocation) {
  std::string bytes(kWalMagic);
  ByteWriter frame;
  frame.U32(kMaxWalPayload + 1);  // Length past the cap.
  frame.U32(0);
  bytes += frame.Take();
  bytes += std::string(64, 'x');

  WalDecodeResult result = DecodeWal(bytes);
  EXPECT_EQ(result.tail.code(), StatusCode::kCorruptedData);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.valid_bytes, kWalMagic.size());
}

TEST(WalCodecTest, BadKindOrTrailingPayloadBytesAreCorrupt) {
  // A record whose payload checksums fine but parses wrong (kind 9) must
  // still be rejected: the checksum authenticates bytes, not semantics.
  ByteWriter payload;
  payload.U8(9);  // Not a WalRecord::Kind.
  payload.U64(1);
  payload.U32(0);
  std::string body = payload.Take();
  ByteWriter frame;
  frame.U32(static_cast<std::uint32_t>(body.size()));
  frame.U32(Crc32(body));
  std::string bytes = std::string(kWalMagic) + frame.Take() + body;

  WalDecodeResult result = DecodeWal(bytes);
  EXPECT_EQ(result.tail.code(), StatusCode::kCorruptedData);
  EXPECT_TRUE(result.records.empty());
}

// -- snapshot.h --------------------------------------------------------

Database SampleDb() {
  Database db(TwoRelationSchema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  db.AddFactStr(1, "a b c");
  db.AddFactStr(0, "c d");
  return db;
}

TEST(SnapshotCodecTest, RoundTripPreservesContentAndCounters) {
  Database db = SampleDb();
  MetaCounters meta;
  meta.compactions = 3;
  meta.audits_run = 7;
  meta.audit_violations = 1;
  std::string bytes = EncodeSnapshot(db, /*last_seq=*/42, meta);

  StatusOr<DecodedSnapshot> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->last_seq, 42u);
  EXPECT_EQ(decoded->meta.compactions, 3u);
  EXPECT_EQ(decoded->meta.audits_run, 7u);
  EXPECT_EQ(decoded->meta.audit_violations, 1u);
  EXPECT_EQ(NamedFacts(decoded->db), NamedFacts(db));
  // The interner is restored verbatim, so element ids stay meaningful.
  EXPECT_EQ(decoded->db.elements().size(), db.elements().size());
}

TEST(SnapshotCodecTest, TombstonesSurviveTheRoundTrip) {
  // Snapshots are normally taken post-Compact, but the codec itself must
  // be faithful to whatever columns it is given — including dead slots.
  Database db = SampleDb();
  db.RemoveFact(1);
  std::string bytes = EncodeSnapshot(db, 1, {});

  StatusOr<DecodedSnapshot> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->db.NumFacts(), db.NumFacts());
  EXPECT_EQ(decoded->db.NumAliveFacts(), db.NumAliveFacts());
  EXPECT_FALSE(decoded->db.alive(1));
  EXPECT_EQ(NamedFacts(decoded->db), NamedFacts(db));
}

TEST(SnapshotCodecTest, EveryTruncationIsTypedCorruption) {
  // Chop the snapshot at every length: the decoder must return a typed
  // error on each prefix, never abort or return a half-built database.
  std::string bytes = EncodeSnapshot(SampleDb(), 9, {});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    StatusOr<DecodedSnapshot> decoded =
        DecodeSnapshot(std::string_view(bytes).substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruptedData);
  }
}

TEST(SnapshotCodecTest, BitFlipsNeverDecode) {
  std::string bytes = EncodeSnapshot(SampleDb(), 9, {});
  // Flip one bit at a spread of positions; the body CRC catches all of
  // them (magic flips fail the magic check instead).
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::string corrupt = bytes;
    corrupt[pos] ^= 0x10;
    StatusOr<DecodedSnapshot> decoded = DecodeSnapshot(corrupt);
    EXPECT_FALSE(decoded.ok()) << "bit flip at " << pos << " decoded";
  }
}

TEST(VerdictCodecTest, RoundTripValidatesAgainstTheDatabase) {
  Database db = SampleDb();
  PersistedVerdictMap verdicts;
  PersistedVerdict v;
  v.fingerprint = ComponentFingerprint{0x1111, 0x2222, 2};
  v.certain = false;
  v.has_witness = true;
  v.witness_facts = {db.MaterializeFact(0), db.MaterializeFact(1)};
  verdicts["R(x | y) R(y | z)#cert2"] = {v};
  std::string bytes = EncodeVerdicts(verdicts);

  StatusOr<PersistedVerdictMap> decoded = DecodeVerdicts(bytes, db);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 1u);
  const std::vector<PersistedVerdict>& got =
      decoded->at("R(x | y) R(y | z)#cert2");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].fingerprint.count, 2u);
  EXPECT_TRUE(got[0].has_witness);
  ASSERT_EQ(got[0].witness_facts.size(), 2u);
  EXPECT_EQ(got[0].witness_facts[0], db.MaterializeFact(0));

  // The same bytes against a database missing those elements must fail
  // id validation — a verdict is only valid against the state it names.
  Database empty(TwoRelationSchema());
  StatusOr<PersistedVerdictMap> rejected = DecodeVerdicts(bytes, empty);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kCorruptedData);
}

// -- io.h --------------------------------------------------------------

TEST(IoTest, WriteFileAtomicRoundTrip) {
  std::string dir = FreshDir("atomic");
  ASSERT_TRUE(MakeDirs(dir).ok());
  std::string path = dir + "/file.bin";

  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  StatusOr<std::string> read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "first");

  ASSERT_TRUE(WriteFileAtomic(path, "second").ok());
  read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "second");

  EXPECT_EQ(ReadFile(dir + "/absent").status().code(), StatusCode::kNotFound);
}

TEST(IoTest, CrashDuringAtomicWriteLeavesOldOrNewNeverTorn) {
  std::string dir = FreshDir("atomic_crash");
  ASSERT_TRUE(MakeDirs(dir).ok());
  std::string path = dir + "/file.bin";
  ASSERT_TRUE(WriteFileAtomic(path, "old-content").ok());

  // WriteFileAtomic is three ops (write tmp, fsync tmp, rename); crash
  // before each — and tear the first — and the visible file must read
  // either the old content or the new, never a mix.
  for (std::uint64_t crash_at = 0; crash_at < 3; ++crash_at) {
    for (FaultPlan::Mode mode :
         {FaultPlan::Mode::kBeforeOp, FaultPlan::Mode::kPartialWrite}) {
      FaultPlan plan;
      plan.crash_at_op = crash_at;
      plan.mode = mode;
      InstallFault(plan);
      Status written = WriteFileAtomic(path, "new-content!");
      EXPECT_TRUE(FaultTripped());
      EXPECT_EQ(written.code(), StatusCode::kIoError);
      ClearFault();

      StatusOr<std::string> read = ReadFile(path);
      ASSERT_TRUE(read.ok());
      EXPECT_TRUE(*read == "old-content" || *read == "new-content!")
          << "crash at op " << crash_at << " left: " << *read;
      // Ops before the rename must leave the *old* content.
      if (crash_at < 2) {
        EXPECT_EQ(*read, "old-content");
      }
      ASSERT_TRUE(WriteFileAtomic(path, "old-content").ok());  // Reset.
    }
  }
}

TEST(IoTest, AppendFileSyncIsTheDurabilityBarrier) {
  std::string dir = FreshDir("append");
  ASSERT_TRUE(MakeDirs(dir).ok());
  std::string path = dir + "/wal.log";

  StatusOr<AppendFile> opened = AppendFile::Open(path);
  ASSERT_TRUE(opened.ok());
  AppendFile file = std::move(*opened);
  ASSERT_TRUE(file.Append("abcd").ok());
  EXPECT_EQ(file.appended_size(), 4u);
  EXPECT_EQ(file.synced_size(), 0u);  // Buffered, not durable.
  // "Crash" before the sync: close without flushing, like a dying
  // process whose page cache never reached disk.
  file.Close();
  StatusOr<std::string> read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "");  // The un-synced suffix is gone.

  opened = AppendFile::Open(path);
  ASSERT_TRUE(opened.ok());
  file = std::move(*opened);
  ASSERT_TRUE(file.Append("abcd").ok());
  ASSERT_TRUE(file.Sync().ok());
  EXPECT_EQ(file.synced_size(), 4u);
  ASSERT_TRUE(file.Append("efgh").ok());
  file.Close();  // Again: only the synced prefix survives.
  read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "abcd");
}

TEST(IoTest, PartialWriteTearsTheSyncAndTruncateDropsIt) {
  std::string dir = FreshDir("torn");
  ASSERT_TRUE(MakeDirs(dir).ok());
  std::string path = dir + "/wal.log";

  StatusOr<AppendFile> opened = AppendFile::Open(path);
  ASSERT_TRUE(opened.ok());
  AppendFile file = std::move(*opened);
  ASSERT_TRUE(file.Append("0123456789").ok());

  FaultPlan plan;
  plan.crash_at_op = 0;
  plan.mode = FaultPlan::Mode::kPartialWrite;
  InstallFault(plan);
  EXPECT_EQ(file.Sync().code(), StatusCode::kIoError);  // Died mid-write.
  ClearFault();
  file.Close();

  StatusOr<std::string> read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "01234");  // Half the buffer landed: a torn record.

  // Recovery reopens with truncate_to to drop the torn tail.
  opened = AppendFile::Open(path, /*truncate_to=*/2);
  ASSERT_TRUE(opened.ok());
  file = std::move(*opened);
  EXPECT_EQ(file.synced_size(), 2u);
  ASSERT_TRUE(file.Append("XY").ok());
  ASSERT_TRUE(file.Sync().ok());
  file.Close();
  read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "01XY");
}

TEST(IoTest, DeadAfterTripUntilCleared) {
  std::string dir = FreshDir("dead");
  FaultPlan plan;
  plan.crash_at_op = 0;
  InstallFault(plan);
  EXPECT_EQ(MakeDirs(dir).code(), StatusCode::kIoError);
  // Every subsequent op fails too: the simulated process is dead.
  EXPECT_EQ(MakeDirs(dir).code(), StatusCode::kIoError);
  EXPECT_EQ(WriteFileAtomic(dir + "/f", "x").code(), StatusCode::kIoError);
  ClearFault();
  EXPECT_TRUE(MakeDirs(dir).ok());  // "Restarted."
}

// -- store.h -----------------------------------------------------------

TEST(DurableStoreTest, CreateAppendReopenReplaysTheTail) {
  std::string dir = FreshDir("store_basic");
  Database db(TwoRelationSchema());
  DurableStore::Options options;

  StatusOr<std::unique_ptr<DurableStore>> created =
      DurableStore::Create(dir, db, {}, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_TRUE((*created)
                  ->AppendBatch(WalRecord::Kind::kInsert,
                                {{"R", {"a", "b"}}, {"R", {"b", "c"}}})
                  .ok());
  ASSERT_TRUE(
      (*created)->AppendBatch(WalRecord::Kind::kDelete, {{"R", {"b", "c"}}}).ok());
  DurableStore::Counters counters = (*created)->counters();
  EXPECT_EQ(counters.wal_records, 2u);
  EXPECT_EQ(counters.last_seq, 2u);
  created->reset();  // Close the WAL file (everything is synced).

  StatusOr<DurableStore::OpenResult> opened = DurableStore::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->last_seq, 2u);
  EXPECT_EQ(opened->replayed_records, 2u);
  EXPECT_EQ(NamedFacts(opened->db),
            (std::vector<std::pair<std::string, std::vector<std::string>>>{
                {"R", {"a", "b"}}}));
}

TEST(DurableStoreTest, SnapshotResetsWalAndReopenSkipsCoveredRecords) {
  std::string dir = FreshDir("store_snapshot");
  Database db(TwoRelationSchema());
  DurableStore::Options options;

  StatusOr<std::unique_ptr<DurableStore>> created =
      DurableStore::Create(dir, db, {}, options);
  ASSERT_TRUE(created.ok());
  DurableStore& store = **created;
  ASSERT_TRUE(
      store.AppendBatch(WalRecord::Kind::kInsert, {{"R", {"a", "b"}}}).ok());
  db.AddFactStr(0, "a b");
  ASSERT_TRUE(store.WriteSnapshot(db, {}, {}).ok());
  EXPECT_EQ(store.counters().wal_records, 0u);  // WAL reset to its header.

  // One more record on top of the snapshot.
  ASSERT_TRUE(
      store.AppendBatch(WalRecord::Kind::kInsert, {{"R", {"b", "c"}}}).ok());
  created->reset();

  StatusOr<DurableStore::OpenResult> opened = DurableStore::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->last_seq, 2u);
  EXPECT_EQ(opened->replayed_records, 1u);  // Only the post-snapshot tail.
  EXPECT_EQ(opened->db.NumAliveFacts(), 2u);
}

TEST(DurableStoreTest, TornWalTailIsTruncatedOnOpen) {
  std::string dir = FreshDir("store_torn");
  Database db(TwoRelationSchema());
  DurableStore::Options options;

  StatusOr<std::unique_ptr<DurableStore>> created =
      DurableStore::Create(dir, db, {}, options);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE((*created)
                  ->AppendBatch(WalRecord::Kind::kInsert, {{"R", {"a", "b"}}})
                  .ok());
  created->reset();

  // Tear the WAL by hand: drop the last 3 bytes of the record.
  std::string wal_path = dir + "/wal.log";
  StatusOr<std::string> bytes = ReadFile(wal_path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      WriteFileAtomic(wal_path, bytes->substr(0, bytes->size() - 3)).ok());

  StatusOr<DurableStore::OpenResult> opened = DurableStore::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->replayed_records, 0u);  // The torn record is dropped...
  EXPECT_EQ(opened->db.NumAliveFacts(), 0u);

  // ...and the file was physically truncated, so appends resume cleanly.
  ASSERT_TRUE(opened->store
                  ->AppendBatch(WalRecord::Kind::kInsert,
                                {{"S", {"x", "y", "z"}}})
                  .ok());
  opened->store.reset();
  StatusOr<DurableStore::OpenResult> reopened = DurableStore::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->replayed_records, 1u);
  EXPECT_EQ(NamedFacts(reopened->db),
            (std::vector<std::pair<std::string, std::vector<std::string>>>{
                {"S", {"x", "y", "z"}}}));
}

TEST(DurableStoreTest, CorruptNewestSnapshotFallsBackToThePreviousOne) {
  std::string dir = FreshDir("store_fallback");
  Database db(TwoRelationSchema());
  DurableStore::Options options;

  StatusOr<std::unique_ptr<DurableStore>> created =
      DurableStore::Create(dir, db, {}, options);
  ASSERT_TRUE(created.ok());
  DurableStore& store = **created;
  ASSERT_TRUE(
      store.AppendBatch(WalRecord::Kind::kInsert, {{"R", {"a", "b"}}}).ok());
  db.AddFactStr(0, "a b");
  ASSERT_TRUE(store.WriteSnapshot(db, {}, {}).ok());  // Snapshot at seq 1.
  created->reset();

  // Corrupt the newest snapshot in place (flip a byte mid-body).
  StatusOr<std::vector<std::string>> entries = ListDir(dir);
  ASSERT_TRUE(entries.ok());
  std::string newest;
  for (const std::string& name : *entries) {
    if (name.rfind("snapshot-", 0) == 0 && name > newest) newest = name;
  }
  ASSERT_FALSE(newest.empty());
  StatusOr<std::string> bytes = ReadFile(dir + "/" + newest);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = *bytes;
  corrupt[corrupt.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteFileAtomic(dir + "/" + newest, corrupt).ok());

  // Open falls back to snapshot 0 and replays the full WAL... but the
  // WAL was reset by the snapshot, so the fallback sees the pre-snapshot
  // state. That is exactly the documented fallback contract: strictly
  // older durable state, never corrupt state.
  StatusOr<DurableStore::OpenResult> opened = DurableStore::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->last_seq, 0u);
  EXPECT_EQ(opened->db.NumAliveFacts(), 0u);
}

TEST(DurableStoreTest, AllSnapshotsCorruptIsTypedNotSilent) {
  std::string dir = FreshDir("store_all_corrupt");
  Database db(TwoRelationSchema());
  DurableStore::Options options;
  StatusOr<std::unique_ptr<DurableStore>> created =
      DurableStore::Create(dir, db, {}, options);
  ASSERT_TRUE(created.ok());
  created->reset();

  StatusOr<std::vector<std::string>> entries = ListDir(dir);
  ASSERT_TRUE(entries.ok());
  for (const std::string& name : *entries) {
    if (name.rfind("snapshot-", 0) != 0) continue;
    ASSERT_TRUE(WriteFileAtomic(dir + "/" + name, "garbage").ok());
  }
  StatusOr<DurableStore::OpenResult> opened = DurableStore::Open(dir, options);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruptedData);

  EXPECT_EQ(DurableStore::Open(FreshDir("store_absent"), options)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(DurableStoreTest, DestroyRemovesTheDirectory) {
  std::string dir = FreshDir("store_destroy");
  Database db(TwoRelationSchema());
  StatusOr<std::unique_ptr<DurableStore>> created =
      DurableStore::Create(dir, db, {}, {});
  ASSERT_TRUE(created.ok());
  created->reset();
  ASSERT_TRUE(FileExists(dir + "/wal.log"));
  ASSERT_TRUE(DurableStore::Destroy(dir).ok());
  EXPECT_FALSE(FileExists(dir + "/wal.log"));
  EXPECT_EQ(ListDir(dir).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace store
}  // namespace cqa
