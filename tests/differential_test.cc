// Differential harness: every registry backend vs. exhaustive repair
// enumeration (the only oracle that needs no algorithmic insight) on
// hundreds of seeded RandomInstance/ChainInstance databases.
//
// Contract per backend:
//   - "exhaustive" and "sat" are exact on every two-atom query;
//   - the dichotomy-dispatched backend (no forced_backend) is exact on
//     every query the classifier resolves;
//   - every backend that accepts a query is at least SOUND: answering
//     "certain" implies ground-truth certain (backend.h's contract);
//   - a backend that cannot answer a query must be rejected at Compile
//     with kCapabilityMismatch — never silently misanswer.

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "algo/exhaustive.h"
#include "api/service.h"
#include "base/rng.h"
#include "gen/workloads.h"

namespace cqa {
namespace {

/// Ground truth must stay enumerable; instances above the cap are skipped
/// (and counted, so the 500-database bar is still enforced).
constexpr double kMaxRepairs = 4096.0;

struct BackendPlan {
  CompiledQuery handle;
  bool exact = false;  ///< Equality against ground truth (else soundness).
};

TEST(DifferentialTest, BackendsAgreeWithEnumerationOn500PlusDatabases) {
  const char* kQueries[] = {
      "R(x | y) R(y | z)",              // PTime, cert2 class.
      "R(x, u | x, y) R(u, y | x, z)",  // The paper's q2.
      "R(x | y, z) R(z | x, y)",        // The paper's q6.
      "R1(x | y) R2(y | z)",            // Self-join-free substrate.
  };
  const int kRandomPerQuery = 100;
  const int kChainPerQuery = 50;

  Service service;
  std::size_t tested = 0;
  std::size_t skipped = 0;

  for (const char* query_text : kQueries) {
    // Dispatched handle: exact wherever the classifier resolves.
    StatusOr<CompiledQuery> dispatched = service.Compile(query_text);
    ASSERT_TRUE(dispatched.ok()) << dispatched.status().ToString();

    // One handle per registry backend that accepts the query; the ones
    // that refuse must refuse with kCapabilityMismatch.
    std::map<std::string, BackendPlan> plans;
    for (const std::string& backend : Service::BackendNames()) {
      CompileOptions options;
      options.forced_backend = backend;
      StatusOr<CompiledQuery> forced = service.Compile(query_text, options);
      if (!forced.ok()) {
        EXPECT_EQ(forced.status().code(), StatusCode::kCapabilityMismatch)
            << backend << " on " << query_text << ": "
            << forced.status().ToString();
        continue;
      }
      BackendPlan plan;
      plan.handle = *forced;
      plan.exact = backend == "exhaustive" || backend == "sat" ||
                   backend == std::string(dispatched->backend_name());
      plans.emplace(backend, plan);
    }
    // The exact baselines must always be available.
    ASSERT_TRUE(plans.count("exhaustive")) << query_text;
    ASSERT_TRUE(plans.count("sat")) << query_text;

    Rng rng(0xD1FF0000 + static_cast<std::uint64_t>(tested));
    for (int i = 0; i < kRandomPerQuery + kChainPerQuery; ++i) {
      Database db =
          i < kRandomPerQuery
              ? RandomInstance(dispatched->query(),
                               InstanceParams{18, 4, 0.6, 0.3}, &rng)
              : ChainInstance(dispatched->query(), 7, 0.5, 0.6, &rng);
      if (db.CountRepairs() > kMaxRepairs) {
        ++skipped;
        continue;
      }
      ++tested;
      bool truth = CertainByEnumeration(dispatched->query(), db, kMaxRepairs);

      StatusOr<SolveReport> via_dispatch = service.Solve(*dispatched, db);
      ASSERT_TRUE(via_dispatch.ok()) << via_dispatch.status().ToString();
      EXPECT_EQ(via_dispatch->certain, truth)
          << "dispatched (" << via_dispatch->backend_name << ") on "
          << query_text << "\n" << db.ToString();

      for (const auto& [backend, plan] : plans) {
        StatusOr<SolveReport> report = service.Solve(plan.handle, db);
        ASSERT_TRUE(report.ok())
            << backend << ": " << report.status().ToString();
        if (plan.exact) {
          EXPECT_EQ(report->certain, truth)
              << backend << " on " << query_text << "\n" << db.ToString();
        } else {
          // Soundness: "certain" can always be trusted.
          EXPECT_TRUE(!report->certain || truth)
              << backend << " unsound on " << query_text << "\n"
              << db.ToString();
        }
      }
    }
  }
  EXPECT_GE(tested, 500u) << "(skipped " << skipped
                          << " instances above the repair cap)";
}

// The capability-mismatch paths the harness above relies on, pinned
// explicitly: the trivial backend refuses non-trivial queries at Compile,
// across both forced and (never) dispatched routes.
TEST(DifferentialTest, ForcedBackendCapabilityMismatch) {
  Service service;
  CompileOptions trivial;
  trivial.forced_backend = "trivial";

  // q3 is not trivial: the scan must be refused, not misused.
  StatusOr<CompiledQuery> refused =
      service.Compile("R(x | y) R(y | z)", trivial);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCapabilityMismatch);

  // A genuinely trivial query is accepted and answered exactly.
  StatusOr<CompiledQuery> accepted =
      service.Compile("R(x | y) R(y | y)", trivial);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  Rng rng(0xFACE);
  for (int i = 0; i < 25; ++i) {
    Database db = RandomInstance(accepted->query(),
                                 InstanceParams{14, 3, 0.6, 0.3}, &rng);
    if (db.CountRepairs() > kMaxRepairs) continue;
    StatusOr<SolveReport> report = service.Solve(*accepted, db);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->certain,
              CertainByEnumeration(accepted->query(), db, kMaxRepairs));
  }

  // Unknown backend names are a typed error, not an abort.
  CompileOptions unknown;
  unknown.forced_backend = "definitely-not-a-backend";
  StatusOr<CompiledQuery> bad =
      service.Compile("R(x | y) R(y | z)", unknown);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnknownBackend);
}

// Differential check through the *registered database* route as well:
// the incremental component-cache path must agree with the ad-hoc
// full-solve path and with ground truth on fresh registrations.
TEST(DifferentialTest, IncrementalPathAgreesWithAdHocPath) {
  Service service;
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());
  Rng rng(0xD1FFBEEF);
  for (int i = 0; i < 50; ++i) {
    Database db = RandomInstance(q->query(),
                                 InstanceParams{20, 4, 0.6, 0.3}, &rng);
    if (db.CountRepairs() > kMaxRepairs) continue;
    bool truth = CertainByEnumeration(q->query(), db, kMaxRepairs);

    StatusOr<SolveReport> adhoc = service.Solve(*q, db);
    ASSERT_TRUE(adhoc.ok());
    std::string name = "db" + std::to_string(i);
    ASSERT_TRUE(service.RegisterDatabase(name, std::move(db)).ok());
    StatusOr<SolveReport> registered = service.Solve(*q, name);
    ASSERT_TRUE(registered.ok());

    EXPECT_TRUE(registered->incremental);
    EXPECT_FALSE(adhoc->incremental);
    EXPECT_EQ(registered->certain, truth);
    EXPECT_EQ(adhoc->certain, truth);
    ASSERT_TRUE(service.DropDatabase(name).ok());
  }
}

}  // namespace
}  // namespace cqa
