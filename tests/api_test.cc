// Tests for the cqa::Service facade: the Status/StatusOr error model,
// compiled-query caching, database registration, SolveReport provenance,
// and fault isolation in multi-database solving. No exception may cross
// the api/ boundary: every error path here is observed as a typed Status.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "api/service.h"
#include "base/rng.h"
#include "gen/workloads.h"

namespace cqa {
namespace {

Database ChainDb(const Schema& schema) {
  Database db(schema);
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  db.AddFactStr(0, "b d");
  return db;
}

TEST(StatusTest, OkAndErrorStates) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.ToString(), "OK");

  Status bad(StatusCode::kNotFound, "no such thing");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.ToString(), "NOT_FOUND: no such thing");
}

TEST(StatusTest, CodeNamesRoundTrip) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidQuery,
        StatusCode::kUnknownBackend, StatusCode::kCapabilityMismatch,
        StatusCode::kUnresolvedClass, StatusCode::kSchemaMismatch,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kInvalidArgument, StatusCode::kIoError,
        StatusCode::kCorruptedData, StatusCode::kOverloaded,
        StatusCode::kDeadlineExceeded}) {
    std::string_view name = ToString(code);
    EXPECT_NE(name, "?");
    auto parsed = StatusCodeFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(StatusCodeFromString("NOT_A_CODE").has_value());
}

TEST(StatusOrTest, ValueAndStatusAccess) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  EXPECT_TRUE(value.status().ok());

  StatusOr<int> error = Status(StatusCode::kInvalidArgument, "nope");
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceCompile, BadQueryTextIsInvalidQuery) {
  Service service;
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidQuery);
  EXPECT_NE(q.status().message().find("line 1"), std::string::npos)
      << q.status().message();
}

TEST(ServiceCompile, UnknownForcedBackend) {
  Service service;
  CompileOptions options;
  options.forced_backend = "SAT";  // Names are case-sensitive.
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)", options);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kUnknownBackend);
  // The message teaches the vocabulary.
  EXPECT_NE(q.status().message().find("sat"), std::string::npos)
      << q.status().message();
}

TEST(ServiceCompile, CapabilityMismatch) {
  Service service;
  CompileOptions options;
  options.forced_backend = "trivial";  // q3 is not one-atom-equivalent.
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)", options);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kCapabilityMismatch);
}

TEST(ServiceCompile, UnresolvedClassificationIsTypedError) {
  // Starve the tripath search so a 2way-determined query cannot be
  // resolved within bounds.
  ServiceOptions options;
  options.tripath_limits.max_candidates = 1;
  Service service(options);
  const char* q6 = "R(x | y, z) R(z | x, y)";
  StatusOr<CompiledQuery> rejected = service.Compile(q6);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnresolvedClass);

  // Opting in falls back to the exact exponential backend.
  CompileOptions allow;
  allow.allow_unresolved = true;
  StatusOr<CompiledQuery> accepted = service.Compile(q6, allow);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(accepted->classification().query_class, QueryClass::kUnresolved);
  EXPECT_EQ(accepted->backend_name(), "exhaustive");

  // Forcing a backend also bypasses the gate.
  CompileOptions forced;
  forced.forced_backend = "sat";
  EXPECT_TRUE(service.Compile(q6, forced).ok());
}

TEST(ServiceCompile, CachesByCanonicalText) {
  Service service;
  StatusOr<CompiledQuery> a = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(service.CompiledCount(), 1u);
  // Formatting variants share the compilation.
  StatusOr<CompiledQuery> b = service.Compile("R( x | y )   R( y | z )");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(service.CompiledCount(), 1u);
  EXPECT_EQ(a->text(), b->text());
  // A forced backend is a distinct compilation.
  CompileOptions forced;
  forced.forced_backend = "exhaustive";
  ASSERT_TRUE(service.Compile("R(x | y) R(y | z)", forced).ok());
  EXPECT_EQ(service.CompiledCount(), 2u);
}

TEST(ServiceCompile, CacheIsBoundedAndEvictionSafe) {
  ServiceOptions options;
  options.compile_cache.max_entries = 2;
  Service service(options);
  // Distinct compilations of one text: forced backends vary the key.
  StatusOr<CompiledQuery> pinned = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(pinned.ok());
  for (const char* backend : {"exhaustive", "sat", "cert2"}) {
    CompileOptions forced;
    forced.forced_backend = backend;
    ASSERT_TRUE(service.Compile("R(x | y) R(y | z)", forced).ok());
  }
  EXPECT_EQ(service.CompiledCount(), 2u);  // Capped, not 4.
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.compiled_queries, 2u);
  EXPECT_EQ(stats.compiled.evictions, 2u);
  EXPECT_GE(stats.compiled.misses, 4u);

  // The evicted compilation's handle still solves: the shared state is
  // pinned by the handle, not by the cache entry.
  Database db(pinned->query().schema());
  db.AddFactStr(0, "a a");  // Self-loop: R(a|a) joins with itself.
  StatusOr<SolveReport> report = service.Solve(*pinned, db);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->certain);

  // Recompiling an evicted text is a miss that re-enters the cache.
  StatusOr<CompiledQuery> again = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->text(), pinned->text());
}

TEST(ServiceDatabases, RegisterDropAndNotFound) {
  Service service;
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());

  EXPECT_TRUE(service.RegisterDatabase("d1", ChainDb(q->query().schema())).ok());
  Status dup = service.RegisterDatabase("d1", ChainDb(q->query().schema()));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);

  StatusOr<SolveReport> missing = service.Solve(*q, "nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  EXPECT_EQ(service.DatabaseNames(), std::vector<std::string>{"d1"});
  EXPECT_TRUE(service.DropDatabase("d1").ok());
  EXPECT_EQ(service.DropDatabase("d1").code(), StatusCode::kNotFound);
}

TEST(ServiceSolve, ReportCarriesProvenanceAndTimings) {
  Service service;
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(service.RegisterDatabase("d", ChainDb(q->query().schema())).ok());

  StatusOr<SolveReport> report = service.Solve(*q, "d");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->certain);
  EXPECT_EQ(report->query_class, QueryClass::kPTimeCert2);
  EXPECT_EQ(report->complexity, Complexity::kPTime);
  EXPECT_EQ(report->algorithm, SolverAlgorithm::kCert2);
  EXPECT_EQ(report->backend_name, "cert2");
  EXPECT_EQ(report->num_facts, 3u);
  EXPECT_EQ(report->num_blocks, 2u);
  EXPECT_GT(report->timings.parse_seconds, 0.0);
  EXPECT_GT(report->timings.classify_seconds, 0.0);
  EXPECT_GE(report->timings.prepare_seconds, 0.0);
  EXPECT_GT(report->timings.solve_seconds, 0.0);
  EXPECT_FALSE(report->witness.has_value());  // Certain: nothing to explain.
  // The summary never shows raw enum ints.
  EXPECT_NE(report->Summary().find("Cert_2"), std::string::npos)
      << report->Summary();
}

TEST(ServiceSolve, SchemaMismatchIsTypedError) {
  Service service;
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());

  Schema other;
  other.AddRelation("S", 2, 1);  // Right shape, wrong name.
  ASSERT_TRUE(service.RegisterDatabase("wrong", Database(other)).ok());
  StatusOr<SolveReport> report = service.Solve(*q, "wrong");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kSchemaMismatch);

  Schema bad_arity;
  bad_arity.AddRelation("R", 3, 1);  // Right name, wrong arity.
  StatusOr<SolveReport> mismatch = service.Solve(*q, Database(bad_arity));
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kSchemaMismatch);
}

TEST(ServiceSolve, EmptyHandleIsInvalidArgument) {
  Service service;
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());
  CompiledQuery empty;
  EXPECT_FALSE(empty.valid());
  StatusOr<SolveReport> report = service.Solve(empty, ChainDb(q->query().schema()));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceSolveMany, PerDatabaseResults) {
  Service service;
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(service.RegisterDatabase("good", ChainDb(q->query().schema())).ok());
  Schema other;
  other.AddRelation("S", 2, 1);
  ASSERT_TRUE(service.RegisterDatabase("poisoned", Database(other)).ok());

  std::vector<StatusOr<SolveReport>> reports =
      service.SolveMany(*q, {"good", "poisoned", "missing"});
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_TRUE(reports[0].ok());
  EXPECT_EQ(reports[1].status().code(), StatusCode::kSchemaMismatch);
  EXPECT_EQ(reports[2].status().code(), StatusCode::kNotFound);
}

// The batch acceptance bar: one poisoned database fails only its own
// slot; every healthy slot matches the single-shot answer.
TEST(ServiceSolveBatch, PoisonedDatabaseDoesNotTakeDownTheBatch) {
  Service service;
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());

  Rng rng(0xAB5);
  InstanceParams params;
  params.num_facts = 16;
  params.domain_size = 4;
  std::vector<Database> dbs;
  for (int i = 0; i < 8; ++i) {
    dbs.push_back(RandomInstance(q->query(), params, &rng));
  }
  Schema other;
  other.AddRelation("S", 2, 1);  // Schema-mismatched database mid-batch.
  dbs.insert(dbs.begin() + 4, Database(other));

  BatchStats stats;
  std::vector<StatusOr<SolveReport>> reports =
      service.SolveBatch(*q, dbs, &stats);
  ASSERT_EQ(reports.size(), 9u);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i == 4) {
      ASSERT_FALSE(reports[i].ok());
      EXPECT_EQ(reports[i].status().code(), StatusCode::kSchemaMismatch);
      continue;
    }
    ASSERT_TRUE(reports[i].ok()) << i << ": " << reports[i].status().ToString();
    StatusOr<SolveReport> single = service.Solve(*q, dbs[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(reports[i]->certain, single->certain) << i;
    EXPECT_EQ(reports[i]->algorithm, single->algorithm) << i;
  }
  EXPECT_EQ(stats.queries, 8u);  // Only the healthy slots count.
}

TEST(ServiceSolveBatch, NullAndDuplicatePointersFailPerSlot) {
  Service service;
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());
  Database db = ChainDb(q->query().schema());
  std::vector<const Database*> dbs{&db, nullptr, &db};
  std::vector<StatusOr<SolveReport>> reports = service.SolveBatch(*q, dbs);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_TRUE(reports[0].ok());
  EXPECT_EQ(reports[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reports[2].status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceIntrospection, BackendNames) {
  std::vector<std::string> names = Service::BackendNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "cert2"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "exhaustive"), names.end());
}

}  // namespace
}  // namespace cqa
