// Unit tests for src/base: interner, union-find, hashing, rng, strings.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/hash.h"
#include "base/interner.h"
#include "base/rng.h"
#include "base/strings.h"
#include "base/union_find.h"
#include "data/fact.h"

namespace cqa {
namespace {

TEST(Interner, AssignsDenseIdsInOrder) {
  Interner interner;
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.Intern("b"), 1u);
  EXPECT_EQ(interner.Intern("c"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(Interner, InternIsIdempotent) {
  Interner interner;
  ElementId a = interner.Intern("alpha");
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(Interner, FindReturnsNotFoundForUnknown) {
  Interner interner;
  interner.Intern("x");
  EXPECT_EQ(interner.Find("y"), Interner::kNotFound);
  EXPECT_EQ(interner.Find("x"), 0u);
}

TEST(Interner, NameRoundTrips) {
  Interner interner;
  ElementId id = interner.Intern("hello");
  EXPECT_EQ(interner.Name(id), "hello");
}

TEST(Interner, FreshAvoidsCollisions) {
  Interner interner;
  interner.Intern("p#0");
  ElementId f1 = interner.Fresh("p");
  ElementId f2 = interner.Fresh("p");
  EXPECT_NE(f1, f2);
  EXPECT_NE(interner.Name(f1), "p#0");
  EXPECT_NE(interner.Name(f2), "p#0");
}

TEST(Interner, EmptyStringIsInternable) {
  Interner interner;
  ElementId id = interner.Intern("");
  EXPECT_EQ(interner.Find(""), id);
}

TEST(UnionFind, SingletonsInitially) {
  UnionFind uf(4);
  EXPECT_EQ(uf.NumClasses(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(UnionFind, UnionMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Same(0, 1));
  EXPECT_FALSE(uf.Same(0, 2));
  EXPECT_EQ(uf.NumClasses(), 3u);
}

TEST(UnionFind, UnionIsIdempotent) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.NumClasses(), 2u);
}

TEST(UnionFind, TransitiveMerging) {
  UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Same(0, 3));
  EXPECT_FALSE(uf.Same(0, 4));
  EXPECT_EQ(uf.NumClasses(), 2u);
}

TEST(UnionFind, AddCreatesFreshClass) {
  UnionFind uf(2);
  std::uint32_t c = uf.Add();
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(uf.NumClasses(), 3u);
  EXPECT_FALSE(uf.Same(c, 0));
}

TEST(UnionFind, ResetRestoresSingletons) {
  UnionFind uf(3);
  uf.Union(0, 2);
  uf.Reset(3);
  EXPECT_FALSE(uf.Same(0, 2));
  EXPECT_EQ(uf.NumClasses(), 3u);
}

TEST(UnionFind, CopyIsIndependent) {
  UnionFind uf(4);
  uf.Union(0, 1);
  UnionFind copy = uf;
  copy.Union(2, 3);
  EXPECT_TRUE(copy.Same(2, 3));
  EXPECT_FALSE(uf.Same(2, 3));
}

TEST(Hash, RangeHashDiffersOnPermutation) {
  std::vector<std::uint32_t> a = {1, 2, 3};
  std::vector<std::uint32_t> b = {3, 2, 1};
  EXPECT_NE(HashRange(a.begin(), a.end()), HashRange(b.begin(), b.end()));
}

TEST(Hash, RangeHashIsDeterministic) {
  std::vector<std::uint32_t> a = {7, 8, 9};
  EXPECT_EQ(HashRange(a.begin(), a.end()), HashRange(a.begin(), a.end()));
}

TEST(Hash, VectorHashUsableAsFunctor) {
  VectorHash h;
  std::vector<std::uint32_t> a = {0};
  std::vector<std::uint32_t> b = {1};
  EXPECT_NE(h(a), h(b));
}

TEST(Hash, FactSpanHashEqualsOwnedFactHash) {
  // The columnar store hashes argument spans straight out of the arena;
  // lookups hash owned Facts. The two recipes must agree bit-for-bit or
  // the content index misses its own entries.
  FactHash h;
  Fact owned{2, {10, 20, 30}};
  FactRef view(owned);  // Span over the same elements.
  EXPECT_EQ(h(view), h(owned));
  Fact empty_args{7, {}};
  EXPECT_EQ(h(FactRef(empty_args)), h(empty_args));
  Fact other{3, {10, 20, 30}};  // Same args, different relation.
  EXPECT_NE(h(owned), h(other));
}

TEST(Rng, Deterministic) {
  Rng r1(42);
  Rng r2(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r1.Next(), r2.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng r1(1);
  Rng r2(2);
  EXPECT_NE(r1.Next(), r2.Next());
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    std::int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All values hit with 500 draws.
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Strings, TrimStripsWhitespace) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(Strings, SplitAndTrimBasic) {
  auto parts = SplitAndTrim("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyPieces) {
  auto parts = SplitAndTrim("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(Strings, IdentifierRules) {
  EXPECT_TRUE(IsIdentifier("x"));
  EXPECT_TRUE(IsIdentifier("x1"));
  EXPECT_TRUE(IsIdentifier("_tmp"));
  EXPECT_TRUE(IsIdentifier("x'"));
  EXPECT_TRUE(IsIdentifier("C1.s"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("1x"));
  EXPECT_FALSE(IsIdentifier("a b"));
  EXPECT_FALSE(IsIdentifier("'a"));
}

}  // namespace
}  // namespace cqa
