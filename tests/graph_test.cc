// Unit and property tests for src/graph: connected components and
// Hopcroft–Karp maximum bipartite matching.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "base/rng.h"
#include "graph/hopcroft_karp.h"
#include "graph/undirected.h"

namespace cqa {
namespace {

TEST(UndirectedGraph, BasicEdges) {
  UndirectedGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.Finalize();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(UndirectedGraph, SelfLoopsAndDuplicatesIgnored) {
  UndirectedGraph g(3);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.Finalize();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Neighbors(0).size(), 1u);
}

TEST(Components, SingletonVerticesAreComponents) {
  UndirectedGraph g(3);
  g.Finalize();
  Components c = ConnectedComponents(g);
  EXPECT_EQ(c.count, 3u);
}

TEST(Components, ChainIsOneComponent) {
  UndirectedGraph g(5);
  for (std::uint32_t i = 0; i + 1 < 5; ++i) g.AddEdge(i, i + 1);
  g.Finalize();
  Components c = ConnectedComponents(g);
  EXPECT_EQ(c.count, 1u);
  auto groups = c.Groups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 5u);
}

TEST(Components, TwoIslands) {
  UndirectedGraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  g.Finalize();
  Components c = ConnectedComponents(g);
  EXPECT_EQ(c.count, 3u);  // {0,1,2}, {3,4}, {5}.
  EXPECT_EQ(c.component_of[0], c.component_of[2]);
  EXPECT_NE(c.component_of[0], c.component_of[3]);
}

TEST(HopcroftKarp, PerfectMatchingOnIdentity) {
  BipartiteGraph g(4, 4);
  for (std::uint32_t i = 0; i < 4; ++i) g.AddEdge(i, i);
  MatchingResult r = MaximumMatching(g);
  EXPECT_EQ(r.size, 4u);
  EXPECT_TRUE(r.SaturatesLeft());
}

TEST(HopcroftKarp, AugmentingPathNeeded) {
  // Classic case: greedy can pick (0,0) and block vertex 1.
  BipartiteGraph g(2, 2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  MatchingResult r = MaximumMatching(g);
  EXPECT_EQ(r.size, 2u);
  EXPECT_TRUE(r.SaturatesLeft());
}

TEST(HopcroftKarp, UnsaturatedWhenRightTooSmall) {
  BipartiteGraph g(3, 2);
  for (std::uint32_t l = 0; l < 3; ++l) {
    g.AddEdge(l, 0);
    g.AddEdge(l, 1);
  }
  MatchingResult r = MaximumMatching(g);
  EXPECT_EQ(r.size, 2u);
  EXPECT_FALSE(r.SaturatesLeft());
}

TEST(HopcroftKarp, EmptyGraph) {
  BipartiteGraph g(3, 3);
  MatchingResult r = MaximumMatching(g);
  EXPECT_EQ(r.size, 0u);
  EXPECT_FALSE(r.SaturatesLeft());
}

TEST(HopcroftKarp, ZeroLeftVerticesSaturatesTrivially) {
  BipartiteGraph g(0, 3);
  MatchingResult r = MaximumMatching(g);
  EXPECT_EQ(r.size, 0u);
  EXPECT_TRUE(r.SaturatesLeft());
}

TEST(HopcroftKarp, MatchingIsConsistent) {
  BipartiteGraph g(3, 3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  MatchingResult r = MaximumMatching(g);
  // match_left and match_right are mutually consistent.
  for (std::uint32_t l = 0; l < 3; ++l) {
    if (r.match_left[l] != MatchingResult::kUnmatched) {
      EXPECT_EQ(r.match_right[r.match_left[l]], l);
    }
  }
}

/// Exponential reference: maximum matching by trying all subsets of left
/// vertices in order (backtracking).
std::size_t BruteForceMatching(const BipartiteGraph& g) {
  std::vector<bool> used(g.NumRight(), false);
  std::size_t best = 0;
  // Backtracking over left vertices; each may stay unmatched.
  std::function<void(std::uint32_t, std::size_t)> rec =
      [&](std::uint32_t l, std::size_t matched) {
        if (l == g.NumLeft()) {
          best = std::max(best, matched);
          return;
        }
        rec(l + 1, matched);
        for (std::uint32_t r : g.Neighbors(l)) {
          if (!used[r]) {
            used[r] = true;
            rec(l + 1, matched + 1);
            used[r] = false;
          }
        }
      };
  rec(0, 0);
  return best;
}

class HopcroftKarpRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HopcroftKarpRandomTest, AgreesWithBruteForce) {
  Rng rng(1234 + GetParam());
  for (int round = 0; round < 20; ++round) {
    std::size_t nl = 1 + rng.Below(6);
    std::size_t nr = 1 + rng.Below(6);
    BipartiteGraph g(nl, nr);
    for (std::uint32_t l = 0; l < nl; ++l) {
      for (std::uint32_t r = 0; r < nr; ++r) {
        if (rng.Chance(0.4)) g.AddEdge(l, r);
      }
    }
    EXPECT_EQ(MaximumMatching(g).size, BruteForceMatching(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HopcroftKarpRandomTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace cqa
