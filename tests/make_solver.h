// Shared test shim over CertainSolver::Create: the throwing constructor
// is gone, and every test-setup use expects success anyway.

#ifndef CQA_TESTS_MAKE_SOLVER_H_
#define CQA_TESTS_MAKE_SOLVER_H_

#include <utility>

#include "base/check.h"
#include "engine/solver.h"

namespace cqa {

inline CertainSolver MakeSolver(ConjunctiveQuery q,
                                SolverOptions options = {}) {
  StatusOr<CertainSolver> solver =
      CertainSolver::Create(std::move(q), std::move(options));
  CQA_CHECK_MSG(solver.ok(), "CertainSolver::Create failed in test setup");
  return std::move(solver).value();
}

}  // namespace cqa

#endif  // CQA_TESTS_MAKE_SOLVER_H_
