// Overload and deadline behavior of the serving layer, exercised with
// more client connections than worker threads (TSan shard).
//
// The properties that make bounded admission *trustworthy*:
//   - a shed request is shed cleanly: typed kOverloaded, never executed,
//     never a lost or duplicated response;
//   - every admitted request is answered exactly once, even across a
//     graceful Stop() (shutdown drains the queue, it never drops it);
//   - the queue never exceeds its configured bound;
//   - an expired deadline is refused at admission and again at dequeue,
//     each with its own counter, so a saturated server stops burning
//     workers on answers nobody is waiting for.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "base/check.h"
#include "base/rng.h"
#include "gen/workloads.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace cqa {
namespace {

using server::Client;
using server::Request;
using server::Response;
using server::Server;
using server::ServerOptions;

constexpr const char* kQuery = "R(x | y) R(y | z)";

void RegisterSmallDb(Service& service, const char* name) {
  StatusOr<CompiledQuery> q = service.Compile(kQuery);
  CQA_CHECK(q.ok());
  Rng rng(42);
  Database db = ChainInstance(q->query(), 3, 0.5, 0.5, &rng);
  CQA_CHECK(service.RegisterDatabase(name, std::move(db)).ok());
}

Client ConnectedClient(Server& server) {
  int client_fd = -1;
  int server_fd = -1;
  CQA_CHECK(server::LocalSocketPair(&client_fd, &server_fd).ok());
  CQA_CHECK(server.ServeFd(server_fd).ok());
  return Client::FromFd(client_fd);
}

TEST(ServerOverloadTest, SaturationShedsCleanlyAndLosesNothing) {
  constexpr int kClients = 8;
  constexpr int kPerClient = 25;

  Service service;
  RegisterSmallDb(service, "db");
  ServerOptions options;
  options.num_workers = 2;
  options.max_queue = 4;
  // Stall each worker per job so eight pipelining clients outrun two
  // workers and the 4-deep queue must shed.
  options.test_dequeue_delay = std::chrono::microseconds(2000);
  Server server(service, options);

  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<std::uint64_t> shed_count{0};
  std::atomic<std::uint64_t> other_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([c, &server, &ok_count, &shed_count, &other_count] {
      Client client = ConnectedClient(server);
      // Pipeline: fire everything, then collect. Responses may arrive
      // out of order; every id must come back exactly once.
      for (int i = 0; i < kPerClient; ++i) {
        Request req;
        req.request_id =
            static_cast<std::uint64_t>(c) * 1000 + static_cast<std::uint64_t>(i) + 1;
        req.db_name = "db";
        req.query_text = kQuery;
        ASSERT_TRUE(client.Send(req).ok());
      }
      std::map<std::uint64_t, int> seen;
      for (int i = 0; i < kPerClient; ++i) {
        StatusOr<Response> resp = client.Receive();
        ASSERT_TRUE(resp.ok()) << resp.status().ToString();
        ++seen[resp->request_id];
        if (resp->code == StatusCode::kOk) {
          ++ok_count;
        } else if (resp->code == StatusCode::kOverloaded) {
          // Shed means *never executed*: no partial result attached.
          EXPECT_FALSE(resp->certain);
          EXPECT_TRUE(resp->backend_name.empty());
          ++shed_count;
        } else {
          ++other_count;
        }
      }
      EXPECT_EQ(seen.size(), static_cast<std::size_t>(kPerClient));
      for (const auto& [id, count] : seen) {
        EXPECT_EQ(count, 1) << "request " << id << " answered " << count
                            << " times";
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(other_count.load(), 0u);
  EXPECT_GT(shed_count.load(), 0u) << "queue of 4 never overflowed";
  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_EQ(ok_count.load() + shed_count.load(),
            static_cast<std::uint64_t>(kClients) * kPerClient);

  ServiceStats stats = server.Stats();
  EXPECT_EQ(stats.server.shed_overloaded, shed_count.load());
  EXPECT_EQ(stats.server.admitted, ok_count.load());
  EXPECT_EQ(stats.server.admitted, stats.server.completed);
  EXPECT_LE(stats.server.peak_queue_depth, stats.server.queue_capacity);
  EXPECT_EQ(stats.server.queue_depth, 0u);
  server.Stop();
}

TEST(ServerOverloadTest, GracefulStopDrainsEveryAdmittedRequest) {
  constexpr int kRequests = 12;

  Service service;
  RegisterSmallDb(service, "db");
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 32;
  options.test_dequeue_delay = std::chrono::microseconds(1000);
  Server server(service, options);
  Client client = ConnectedClient(server);

  for (int i = 0; i < kRequests; ++i) {
    Request req;
    req.request_id = static_cast<std::uint64_t>(i) + 1;
    req.db_name = "db";
    req.query_text = kQuery;
    ASSERT_TRUE(client.Send(req).ok());
  }
  // Half-close so the reader sees EOF once it has admitted everything,
  // and wait for all twelve admissions (Stop()'s reader hang-up discards
  // unread socket bytes, which is fine for *unadmitted* requests but
  // would make this test race on them). Then Stop() — it must block
  // until the single slow worker has drained the queue, not abandon it.
  client.ShutdownWrite();
  while (server.Stats().server.admitted <
         static_cast<std::uint64_t>(kRequests)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();

  ServiceStats stats = server.Stats();
  EXPECT_EQ(stats.server.admitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.server.completed, stats.server.admitted);
  EXPECT_EQ(stats.server.queue_depth, 0u);

  std::map<std::uint64_t, int> seen;
  for (int i = 0; i < kRequests; ++i) {
    StatusOr<Response> resp = client.Receive();
    ASSERT_TRUE(resp.ok()) << "response " << i << " lost in shutdown: "
                           << resp.status().ToString();
    EXPECT_EQ(resp->code, StatusCode::kOk) << resp->message;
    ++seen[resp->request_id];
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kRequests));
}

TEST(ServerOverloadTest, ExpiredDeadlineRejectedAtAdmission) {
  Service service;
  RegisterSmallDb(service, "db");
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 8;
  // The reader stalls 20ms before the admission check; a 1ms budget is
  // deterministically dead on arrival.
  options.test_admission_delay = std::chrono::microseconds(20000);
  Server server(service, options);
  Client client = ConnectedClient(server);

  Request doomed;
  doomed.request_id = 1;
  doomed.db_name = "db";
  doomed.query_text = kQuery;
  doomed.deadline_micros = 1000;
  StatusOr<Response> resp = client.Call(doomed);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kDeadlineExceeded);

  // No deadline sails through the same stall.
  Request fine;
  fine.request_id = 2;
  fine.db_name = "db";
  fine.query_text = kQuery;
  StatusOr<Response> ok = client.Call(fine);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->code, StatusCode::kOk) << ok->message;

  ServiceStats stats = server.Stats();
  EXPECT_EQ(stats.server.deadline_rejected_admission, 1u);
  EXPECT_EQ(stats.server.deadline_rejected_dequeue, 0u);
  server.Stop();
}

TEST(ServerOverloadTest, DeadlineExpiredInQueueRejectedAtDequeue) {
  Service service;
  RegisterSmallDb(service, "db");
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 8;
  // Admission is instant, but the worker stalls 20ms after dequeue: the
  // 1ms budget survives admission and dies in the queue.
  options.test_dequeue_delay = std::chrono::microseconds(20000);
  Server server(service, options);
  Client client = ConnectedClient(server);

  Request doomed;
  doomed.request_id = 1;
  doomed.db_name = "db";
  doomed.query_text = kQuery;
  doomed.deadline_micros = 1000;
  StatusOr<Response> resp = client.Call(doomed);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kDeadlineExceeded);

  ServiceStats stats = server.Stats();
  EXPECT_EQ(stats.server.deadline_rejected_admission, 0u);
  EXPECT_EQ(stats.server.deadline_rejected_dequeue, 1u);
  // Rejected-at-dequeue still counts as completed: it was admitted and
  // it was answered.
  EXPECT_EQ(stats.server.admitted, stats.server.completed);
  server.Stop();
}

}  // namespace
}  // namespace cqa
