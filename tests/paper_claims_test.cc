// Semantic spot-checks of claims made in the paper's prose that are not
// covered elsewhere: q6 is a clique-query (Theorem 10.4), certain(AB) =
// certain(BA), q5's no-tripath argument, and small structural corners
// (arity-1 relations, key-only atoms).

#include <gtest/gtest.h>

#include "algo/exhaustive.h"
#include "algo/matching.h"
#include "base/check.h"
#include "base/rng.h"
#include "engine/solver.h"
#include "gen/workloads.h"

#include "make_solver.h"
#include "query/eval.h"
#include "query/query.h"
#include "query/solution_graph.h"
#include "tripath/search.h"

namespace cqa {
namespace {


constexpr const char* kQ5 = "R(x | y, x) R(y | x, u)";
constexpr const char* kQ6 = "R(x | y, z) R(z | x, y)";

// "The query q6 is a clique-query as the solution graph of any database is
// a clique-database" (Section 10.1) — checked on random instances.
TEST(PaperClaims, Q6IsACliqueQueryObservationally) {
  auto q6 = ParseQuery(kQ6);
  Rng rng(0x104);
  for (int round = 0; round < 40; ++round) {
    InstanceParams params;
    params.num_facts = 20;
    params.domain_size = 4;
    Database db = RandomInstance(q6, params, &rng);
    SolutionGraph sg = BuildSolutionGraph(q6, db);
    EXPECT_TRUE(IsCliqueDatabase(sg, db)) << db.ToString();
  }
}

// Theorem 10.4: for clique-queries, certain(q) = NOT matching(q) on every
// database, not only on hand-picked clique instances.
TEST(PaperClaims, Theorem104OnQ6RandomInstances) {
  auto q6 = ParseQuery(kQ6);
  Rng rng(0x105);
  for (int round = 0; round < 40; ++round) {
    InstanceParams params;
    params.num_facts = 14;
    params.domain_size = 3;
    Database db = RandomInstance(q6, params, &rng);
    EXPECT_EQ(NotMatchingCertain(q6, db), ExhaustiveCertain(q6, db))
        << db.ToString();
  }
}

// q = AB and BA have the same certain answers (used implicitly throughout
// Section 6 "by symmetry").
TEST(PaperClaims, CertainIsSwapInvariantSemantically) {
  for (const char* text : {kQ5, kQ6, "R(x | y) R(y | z)",
                           "R(x, u | x, y) R(u, y | x, z)"}) {
    auto q = ParseQuery(text);
    auto swapped = q.Swapped();
    Rng rng(0x106);
    for (int round = 0; round < 15; ++round) {
      InstanceParams params;
      params.num_facts = 12;
      params.domain_size = 3;
      Database db = RandomInstance(q, params, &rng);
      EXPECT_EQ(ExhaustiveCertain(q, db), ExhaustiveCertain(swapped, db))
          << text << "\n"
          << db.ToString();
    }
  }
}

// Section 8's q5 argument: any d, e, f with q5(d e) and q5(e f) has two of
// them key-equal, so no center exists. Checked on random instances.
TEST(PaperClaims, Q5CentersAlwaysDegenerate) {
  auto q5 = ParseQuery(kQ5);
  Rng rng(0x107);
  for (int round = 0; round < 25; ++round) {
    InstanceParams params;
    params.num_facts = 16;
    params.domain_size = 3;
    Database db = RandomInstance(q5, params, &rng);
    SolutionSet s = ComputeSolutions(q5, db);
    for (const auto& [d, e] : s.pairs) {
      for (const auto& [e2, f] : s.pairs) {
        if (e != e2) continue;
        // Two of d, e, f must share a block.
        bool degenerate = db.KeyEqual(d, e) || db.KeyEqual(e, f) ||
                          db.KeyEqual(d, f);
        EXPECT_TRUE(degenerate) << db.ToString();
      }
    }
  }
}

// Arity-1 / key-only corner: R(x |) R(y |) is one-atom equivalent and its
// certain answering degenerates to nonemptiness per block.
TEST(PaperClaims, KeyOnlyAtomsAreTrivial) {
  auto q = ParseQuery("R(x |) R(y |)");
  EXPECT_EQ(q.schema().Relation(0).arity, 1u);
  EXPECT_EQ(q.schema().Relation(0).key_len, 1u);
  CertainSolver solver = MakeSolver(q);
  EXPECT_EQ(solver.classification().query_class, QueryClass::kTrivial);
  Database db(q.schema());
  EXPECT_FALSE(solver.Solve(db).certain);  // Empty database.
  db.AddFactStr(0, "a");
  EXPECT_TRUE(solver.Solve(db).certain);   // Any fact matches both atoms.
}

// certain is monotone under adding a fresh *consistent* fact that extends
// no block: it can only add solutions... but only when the fact's block is
// new; adding alternatives to existing blocks can break certainty. Both
// directions exercised.
TEST(PaperClaims, BlockExtensionCanOnlyHurtCertainty) {
  auto q3 = ParseQuery("R(x | y) R(y | z)");
  Database db(q3.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  ASSERT_TRUE(ExhaustiveCertain(q3, db));
  // New singleton block: harmless here.
  db.AddFactStr(0, "z1 z2");
  EXPECT_TRUE(ExhaustiveCertain(q3, db));
  // Extending an existing block with a "dead" fact kills certainty.
  db.AddFactStr(0, "a dead");
  EXPECT_FALSE(ExhaustiveCertain(q3, db));
}

}  // namespace
}  // namespace cqa
