// Tombstone compaction and the FactIdRemap protocol: after Compact(),
// every delta-patched structure (block partition, prepared indexes,
// dynamic components, incremental solver) must be observationally
// identical to a from-scratch rebuild of the same content, verdict
// caches must survive (fingerprints are content-addressed), and
// witnesses must still verify. Plus the Service-level automatic trigger:
// sustained churn keeps the resident slot count bounded.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "algo/dynamic_components.h"
#include "api/service.h"
#include "api/witness.h"
#include "base/check.h"
#include "base/rng.h"
#include "data/audit.h"
#include "data/prepared.h"
#include "engine/incremental.h"
#include "gen/workloads.h"
#include "query/query.h"

namespace cqa {
namespace {

std::vector<std::string> SortedFactStrings(const Database& db) {
  std::vector<std::string> out;
  for (FactId f = 0; f < db.NumFacts(); ++f) {
    if (db.alive(f)) out.push_back(db.FactToString(f));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<std::string>> CanonicalBlocks(const Database& db) {
  std::vector<std::vector<std::string>> out;
  for (const Block& b : db.blocks()) {
    std::vector<std::string> facts;
    for (FactId f : b.facts) facts.push_back(db.FactToString(f));
    std::sort(facts.begin(), facts.end());
    out.push_back(std::move(facts));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<std::string>> CanonicalComponents(
    const DynamicComponents& comps, const Database& db) {
  std::vector<std::vector<std::string>> out;
  for (const auto& [root, comp] : comps.components()) {
    std::vector<std::string> members;
    for (FactId f : comp.members) members.push_back(db.FactToString(f));
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(CompactTest, RemapIsOrderPreservingAndDense) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  Database db(q.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  db.AddFactStr(0, "c d");
  db.AddFactStr(0, "d e");
  (void)db.blocks();  // Force the partition so Compact patches it too.
  db.RemoveFact(1);
  db.RemoveFact(3);
  EXPECT_EQ(db.NumDeadSlots(), 2u);
  EXPECT_DOUBLE_EQ(db.DeadSlotRatio(), 0.5);

  FactIdRemap remap = db.Compact();
  EXPECT_FALSE(remap.identity());
  EXPECT_EQ(remap.old_slots, 4u);
  EXPECT_EQ(remap.new_slots, 2u);
  EXPECT_EQ(remap.Apply(0), 0u);
  EXPECT_EQ(remap.Apply(1), Database::kNoFact);
  EXPECT_EQ(remap.Apply(2), 1u);
  EXPECT_EQ(remap.Apply(3), Database::kNoFact);

  EXPECT_EQ(db.NumFacts(), 2u);
  EXPECT_EQ(db.NumAliveFacts(), 2u);
  EXPECT_EQ(db.NumDeadSlots(), 0u);
  EXPECT_EQ(db.FactToString(0), "R(a | b)");
  EXPECT_EQ(db.FactToString(1), "R(c | d)");

  // FindFact/Contains, the block partition, and the key index all track
  // the new ids.
  Fact cd = db.MaterializeFact(1);
  EXPECT_EQ(db.FindFact(cd), 1u);
  EXPECT_EQ(db.blocks().size(), 2u);
  EXPECT_EQ(db.BlockOf(1), db.FindBlock(0, db.KeyViewOf(1)));

  // A second compaction with nothing dead is an identity no-op.
  FactIdRemap again = db.Compact();
  EXPECT_TRUE(again.identity());
  EXPECT_EQ(db.NumFacts(), 2u);

  // Post-compaction mutation keeps working (fresh slots append).
  FactId fresh = db.AddFactStr(0, "b c");
  EXPECT_EQ(fresh, 2u);
  EXPECT_TRUE(db.alive(fresh));
}

// Churn + Compact must leave Database/PreparedDatabase/DynamicComponents
// indistinguishable from a from-scratch rebuild of the surviving facts,
// across random mutation sequences and the paper's query shapes.
TEST(CompactTest, RemappedStructuresMatchRebuild) {
  const char* kQueries[] = {
      "R(x | y) R(y | z)",
      "R(x, u | x, y) R(u, y | x, z)",
      "R(x | y, z) R(z | x, y)",
  };
  for (int seq = 0; seq < 60; ++seq) {
    auto q = ParseQuery(kQueries[seq % 3]);
    Rng rng(0xC0FFEE + seq);
    InstanceParams params;
    params.num_facts = 30;
    params.domain_size = 4;
    Database db = RandomInstance(q, params, &rng);
    PreparedDatabase pdb(db);
    DynamicComponents comps(q, pdb);

    // Tombstone a random third of the alive facts.
    std::vector<FactId> alive;
    for (FactId f = 0; f < db.NumFacts(); ++f) {
      if (db.alive(f)) alive.push_back(f);
    }
    for (std::size_t i = 0; i < alive.size() / 3; ++i) {
      FactId pick = alive[rng.Below(alive.size())];
      if (!db.alive(pick)) continue;
      Database::RemovedFact removed = db.RemoveFact(pick);
      pdb.ApplyRemove(pick, removed);
      comps.OnRemove(pick);
    }

    std::vector<std::string> before = SortedFactStrings(db);
    auto blocks_before = CanonicalBlocks(db);
    auto comps_before = CanonicalComponents(comps, db);
    std::multiset<std::uint64_t> fp_before;
    for (const auto& [root, comp] : comps.components()) {
      fp_before.insert(comp.fingerprint.sum ^ comp.fingerprint.xr);
    }

    FactIdRemap remap = db.Compact();
    pdb.ApplyRemap(remap);
    comps.ApplyRemap(remap);

    // Deep audit right after the remap fan-out: every patched structure
    // must agree with a fresh re-derivation (data/audit.h).
    AuditReport audit = AuditDatabase(db);
    audit.Merge(AuditPrepared(pdb));
    audit.Merge(AuditComponents(q, pdb, comps));
    ASSERT_TRUE(audit.ok()) << audit.ToString() << "seq " << seq;

    // Content, partition, components, and fingerprints are unchanged.
    EXPECT_EQ(SortedFactStrings(db), before);
    EXPECT_EQ(CanonicalBlocks(db), blocks_before);
    EXPECT_EQ(CanonicalComponents(comps, db), comps_before);
    std::multiset<std::uint64_t> fp_after;
    for (const auto& [root, comp] : comps.components()) {
      fp_after.insert(comp.fingerprint.sum ^ comp.fingerprint.xr);
    }
    EXPECT_EQ(fp_after, fp_before);

    // Index integrity on the new ids.
    for (FactId f = 0; f < db.NumFacts(); ++f) {
      ASSERT_TRUE(db.alive(f));
      ASSERT_EQ(db.FindFact(db.MaterializeFact(f)), f);
      ASSERT_EQ(db.BlockOf(f), db.FindBlock(db.fact(f).relation,
                                            db.KeyViewOf(f)));
    }
    std::size_t indexed = 0;
    for (RelationId r = 0; r < db.schema().NumRelations(); ++r) {
      for (FactId f : pdb.FactsOf(r)) {
        ASSERT_EQ(db.fact(f).relation, r);
        ASSERT_TRUE(db.alive(f));
      }
      indexed += pdb.FactsOf(r).size();
    }
    EXPECT_EQ(indexed, db.NumAliveFacts());

    // min_member stays the minimum (the remap is monotonic).
    for (const auto& [root, comp] : comps.components()) {
      ASSERT_EQ(comp.min_member,
                *std::min_element(comp.members.begin(), comp.members.end()));
    }

    // Post-compaction mutations still delta-maintain correctly.
    std::vector<std::string> names;
    for (std::uint32_t a = 0; a < db.schema().Relation(0).arity; ++a) {
      names.push_back("zz" + std::to_string(a));
    }
    FactId added = db.AddFactNamed(0, names);
    pdb.ApplyInsert(added);
    comps.OnInsert(added);
    PreparedDatabase fresh_pdb(db);
    DynamicComponents fresh(q, fresh_pdb);
    EXPECT_EQ(CanonicalComponents(comps, db),
              CanonicalComponents(fresh, db));
  }
}

// Columnar arena invariants: Compact() slides surviving argument spans
// down in id order, so offsets come out monotone and the arena holds
// exactly the alive facts' arguments (no dead spans left behind).
TEST(CompactTest, ArenaOffsetsMonotoneAndDenseAfterCompact) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  Rng rng(8181);
  Database db(q.schema());
  for (int i = 0; i < 200; ++i) {
    db.AddFactStr(0, "k" + std::to_string(rng.Below(40)) + " v" +
                         std::to_string(rng.Below(60)));
  }
  (void)db.blocks();
  std::vector<FactId> alive;
  for (FactId f = 0; f < db.NumFacts(); ++f) alive.push_back(f);
  for (int i = 0; i < 80; ++i) {
    std::size_t pick = rng.Below(static_cast<std::uint32_t>(alive.size()));
    db.RemoveFact(alive[pick]);
    alive.erase(alive.begin() + pick);
  }

  std::vector<std::string> content_before = SortedFactStrings(db);
  FactIdRemap remap = db.Compact();
  EXPECT_EQ(SortedFactStrings(db), content_before);

  std::uint32_t expected_offset = 0;
  for (FactId f = 0; f < db.NumFacts(); ++f) {
    ASSERT_TRUE(db.alive(f));
    ASSERT_EQ(db.ArgOffsetOf(f), expected_offset);  // Monotone and dense.
    expected_offset += db.fact(f).args.size();
  }
  EXPECT_EQ(db.ArgArenaSize(), expected_offset);
  EXPECT_EQ(remap.new_slots, db.NumFacts());
}

// The verdict cache is content-addressed: a compaction must not cost a
// single re-solve, and witnesses must still verify on the compacted ids.
TEST(CompactTest, VerdictCacheAndWitnessesSurviveCompaction) {
  Service service;
  StatusOr<CompiledQuery> q =
      service.Compile("R(x | y) R(y | z)", CompileOptions{"exhaustive", false});
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  Database db(q->query().schema());
  // Two components, one inconsistent (non-certain => witness).
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "a c");
  db.AddFactStr(0, "b d");
  db.AddFactStr(0, "u v");
  db.AddFactStr(0, "u w");
  ASSERT_TRUE(service.RegisterDatabase("db", std::move(db)).ok());

  StatusOr<SolveReport> first = service.Solve(*q, "db");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->components_resolved, 2u);
  ASSERT_TRUE(first->witness.has_value());

  // Tombstone two facts (churn), then force the compaction.
  ASSERT_TRUE(service.DeleteFacts("db", {{"R", {"b", "d"}}}).ok());
  ASSERT_TRUE(service.InsertFacts("db", {{"R", {"b", "d"}}}).ok());
  ASSERT_TRUE(service.CompactDatabase("db").ok());

  StatusOr<AuditReport> audit = service.AuditDatabase("db");
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  ASSERT_TRUE(audit->ok()) << audit->ToString();

  ServiceStats stats = service.Stats();
  ASSERT_EQ(stats.databases.size(), 1u);
  EXPECT_EQ(stats.databases[0].compactions, 1u);
  EXPECT_EQ(stats.databases[0].tombstoned, 0u);
  EXPECT_EQ(stats.databases[0].fact_slots, stats.databases[0].alive_facts);

  // Same content as after the solve that filled the cache (the delete
  // re-inserted the same tuple): every verdict comes from the cache.
  StatusOr<SolveReport> after = service.Solve(*q, "db");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->components_resolved, 0u);
  EXPECT_EQ(after->components_cached, after->components_total);
  EXPECT_EQ(after->certain, first->certain);
  ASSERT_TRUE(after->witness.has_value());
  Status verified = VerifyWitness(q->query(), *after->witness->database(),
                                  *after->witness);
  EXPECT_TRUE(verified.ok()) << verified.ToString();
}

// Service-level automatic trigger: alternating insert/delete churn on a
// registered database keeps the resident slot count within the bound the
// dead-slot ratio implies, while delta answers match rebuild answers.
TEST(CompactTest, AutoCompactionBoundsSlotGrowthUnderChurn) {
  ServiceOptions options;
  options.compact_dead_ratio = 0.4;
  options.compact_min_slots = 32;
  Service service(options);
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());

  Database db(q->query().schema());
  const int kLive = 60;
  for (int i = 0; i < kLive; ++i) {
    db.AddFactStr(0, "a" + std::to_string(i) + " b" + std::to_string(i));
  }
  ASSERT_TRUE(service.RegisterDatabase("db", std::move(db)).ok());

  Rng rng(0x50AC);
  std::uint64_t compactions = 0;
  std::uint64_t peak_slots = 0;
  for (int step = 0; step < 400; ++step) {
    int i = static_cast<int>(rng.Below(kLive));
    FactSpec spec{"R", {"a" + std::to_string(i), "b" + std::to_string(i)}};
    MutationStats mstats;
    ASSERT_TRUE(service.DeleteFacts("db", {spec}, &mstats).ok());
    ASSERT_TRUE(service.InsertFacts("db", {spec}, &mstats).ok());
    compactions += mstats.compactions;

    ServiceStats stats = service.Stats();
    peak_slots = std::max(peak_slots, stats.databases[0].fact_slots);
    ASSERT_EQ(stats.databases[0].alive_facts, static_cast<std::uint64_t>(kLive));
    // alive/(1-r) = 60/0.6 = 100, plus the batch applied since the check.
    ASSERT_LE(stats.databases[0].fact_slots, 110u) << "step " << step;

    if (step % 50 == 0) {
      StatusOr<AuditReport> audit = service.AuditDatabase("db");
      ASSERT_TRUE(audit.ok()) << audit.status().ToString();
      ASSERT_TRUE(audit->ok()) << audit->ToString() << "step " << step;

      StatusOr<SolveReport> delta = service.Solve(*q, "db");
      ASSERT_TRUE(delta.ok());
      Database fresh(q->query().schema());
      for (int j = 0; j < kLive; ++j) {
        fresh.AddFactStr(0, "a" + std::to_string(j) + " b" +
                                std::to_string(j));
      }
      StatusOr<SolveReport> rebuild = service.Solve(*q, fresh);
      ASSERT_TRUE(rebuild.ok());
      ASSERT_EQ(delta->certain, rebuild->certain);
    }
  }
  EXPECT_GT(compactions, 0u);
  EXPECT_GT(peak_slots, static_cast<std::uint64_t>(kLive));
}

}  // namespace
}  // namespace cqa
