// Unit tests for base/lru.h: eviction order, recency refresh, byte
// accounting, and the hit/miss/eviction counters that feed
// Service::Stats().

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/lru.h"

namespace cqa {
namespace {

std::vector<int> KeysMruFirst(const LruCache<int, std::string>& cache) {
  std::vector<int> keys;
  cache.ForEach([&](const int& k, const std::string&) { keys.push_back(k); });
  return keys;
}

TEST(LruCacheTest, UnboundedByDefault) {
  LruCache<int, std::string> cache;
  for (int i = 0; i < 1000; ++i) cache.Insert(i, "v");
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedPastMaxEntries) {
  LruCache<int, std::string> cache(CacheOptions{/*max_entries=*/3, 0});
  cache.Insert(1, "a");
  cache.Insert(2, "b");
  cache.Insert(3, "c");
  EXPECT_EQ(cache.size(), 3u);

  // 1 is coldest; inserting 4 evicts it.
  EXPECT_EQ(cache.Insert(4, "d"), 1u);
  EXPECT_EQ(cache.Find(1), nullptr);
  ASSERT_NE(cache.Find(2), nullptr);

  // The Find above refreshed 2: it is now the most recent, so the next
  // eviction takes 3 (the coldest survivor).
  EXPECT_EQ(KeysMruFirst(cache).front(), 2);
  cache.Insert(5, "e");
  EXPECT_EQ(cache.Find(3), nullptr);
  ASSERT_NE(cache.Find(2), nullptr);
  ASSERT_NE(cache.Find(4), nullptr);
  ASSERT_NE(cache.Find(5), nullptr);
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(LruCacheTest, OverwriteRefreshesRecencyAndKeepsSize) {
  LruCache<int, std::string> cache(CacheOptions{/*max_entries=*/2, 0});
  cache.Insert(1, "a");
  cache.Insert(2, "b");
  cache.Insert(1, "a2");  // Overwrite: no growth, 1 becomes most recent.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.Find(1), "a2");
  cache.Insert(3, "c");  // Evicts 2, not the refreshed 1.
  EXPECT_EQ(cache.Find(2), nullptr);
  ASSERT_NE(cache.Find(1), nullptr);
}

TEST(LruCacheTest, ByteCapEvictsUntilUnderAndKeepsFreshEntry) {
  LruCache<int, std::string> cache(CacheOptions{0, /*max_bytes=*/100});
  cache.Insert(1, "a", 40);
  cache.Insert(2, "b", 40);
  EXPECT_EQ(cache.bytes(), 80u);
  // 60 more pushes to 140: evicting the coldest (1) reaches the cap.
  EXPECT_EQ(cache.Insert(3, "c", 60), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 100u);
  // An entry larger than the whole cap still caches (never evict the
  // entry just inserted) — the next insert pushes it out.
  cache.Insert(4, "d", 500);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(cache.Find(4), nullptr);
  cache.Insert(5, "e", 10);
  EXPECT_EQ(cache.Find(4), nullptr);
  EXPECT_EQ(cache.bytes(), 10u);
}

TEST(LruCacheTest, CountersTrackHitsMissesEvictions) {
  LruCache<int, std::string> cache(CacheOptions{/*max_entries=*/2, 0});
  EXPECT_EQ(cache.Find(1), nullptr);  // miss
  cache.Insert(1, "a");
  EXPECT_NE(cache.Find(1), nullptr);  // hit
  cache.Insert(2, "b");
  cache.Insert(3, "c");  // evicts 1
  CacheCounters c = cache.Counters();
  EXPECT_EQ(c.entries, 2u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.evictions, 1u);

  CacheCounters sum = c;
  sum += c;
  EXPECT_EQ(sum.hits, 2u);
  EXPECT_EQ(sum.entries, 4u);
}

}  // namespace
}  // namespace cqa
