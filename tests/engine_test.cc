// Tests for the engine layer: the backend registry (every backend agrees
// with or under-approximates the exhaustive ground truth), the prepared
// database indexes, and BatchSolver parity with single-shot
// CertainSolver::Solve on randomized workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "algo/exhaustive.h"
#include "base/check.h"
#include "base/rng.h"
#include "data/prepared.h"
#include "engine/batch.h"
#include "engine/registry.h"
#include "engine/solver.h"
#include "gen/workloads.h"

#include "make_solver.h"
#include "query/eval.h"
#include "query/query.h"

namespace cqa {
namespace {


const char* kCatalog[] = {
    "R(x, u | x, v) R(v, y | u, y)",  // q1: coNP (condition).
    "R(x, u | x, y) R(u, y | x, z)",  // q2: coNP (fork-tripath).
    "R(x | y) R(y | z)",              // q3: Cert_2.
    "R(x | y, x) R(y | x, u)",        // q5: Cert_k, no tripath.
    "R(x | y, z) R(z | x, y)",        // q6: Cert_k OR NOT matching.
    "R(x | y) R(y | y)",              // trivial (hom).
};

Database SmallInstance(const ConjunctiveQuery& q, Rng* rng) {
  InstanceParams params;
  params.num_facts = 12;
  params.domain_size = 3;
  return RandomInstance(q, params, rng);
}

TEST(BackendRegistry, ListsBuiltinBackends) {
  std::vector<std::string> names = BackendRegistry::Global().Names();
  for (const char* expected : {"cert2", "certk", "certk+matching",
                               "exhaustive", "sat", "trivial"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) !=
                names.end())
        << expected;
  }
  EXPECT_EQ(BackendRegistry::Global().Create("no-such-backend"), nullptr);
}

TEST(BackendRegistry, CreatedBackendsReportTheirNames) {
  for (const std::string& name : BackendRegistry::Global().Names()) {
    auto backend = BackendRegistry::Global().Create(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
  }
}

TEST(BackendRegistry, TrivialBackendRejectsNonTrivialQueries) {
  auto backend = BackendRegistry::Global().Create("trivial");
  EXPECT_FALSE(backend->Prepare(ParseQuery("R(x | y) R(y | z)")));
}

// Exact backends must reproduce the enumeration ground truth on every
// query of the catalog; Cert_k-family backends must never overclaim.
TEST(BackendRegistry, BackendsAgreeWithExhaustiveGroundTruth) {
  for (const char* text : kCatalog) {
    auto q = ParseQuery(text);
    Rng rng(0xE1161);
    for (int round = 0; round < 15; ++round) {
      Database db = SmallInstance(q, &rng);
      PreparedDatabase pdb(db);
      bool truth = CertainByEnumeration(q, db);
      for (const std::string& name : BackendRegistry::Global().Names()) {
        auto backend = BackendRegistry::Global().Create(name);
        if (!backend->Prepare(q)) continue;  // trivial on non-trivial q.
        bool answer = backend->Solve(pdb);
        bool exact = name == "exhaustive" || name == "sat" ||
                     name == "trivial";
        if (exact) {
          EXPECT_EQ(answer, truth) << name << " on " << text << "\n"
                                   << db.ToString();
        } else {
          // Sound under-approximations: only "certain" can be trusted.
          EXPECT_TRUE(!answer || truth) << name << " overclaimed on "
                                        << text << "\n"
                                        << db.ToString();
        }
      }
    }
  }
}

TEST(SatBackend, AgreesOnCertainInstance) {
  auto q6 = ParseQuery("R(x | y, z) R(z | x, y)");
  SolverOptions options;
  options.forced_backend = "sat";
  CertainSolver solver = MakeSolver(q6, options);
  Database db(q6.schema());
  db.AddFactStr(0, "e1 e2 e3");
  db.AddFactStr(0, "e3 e1 e2");
  db.AddFactStr(0, "e2 e3 e1");
  db.AddFactStr(0, "e1 e3 e2");
  db.AddFactStr(0, "e2 e1 e3");
  db.AddFactStr(0, "e3 e2 e1");
  SolverAnswer answer = solver.Solve(db);
  EXPECT_TRUE(answer.certain);
  EXPECT_EQ(answer.algorithm, SolverAlgorithm::kSat);
}

TEST(PreparedDatabaseTest, IndexesMatchTheDatabase) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  Rng rng(0xBEEF);
  InstanceParams params;
  params.num_facts = 40;
  params.domain_size = 6;
  Database db = RandomInstance(q, params, &rng);
  PreparedDatabase pdb(db);

  std::size_t indexed = 0;
  for (RelationId r = 0; r < db.schema().NumRelations(); ++r) {
    for (FactId f : pdb.FactsOf(r)) EXPECT_EQ(db.fact(f).relation, r);
    indexed += pdb.FactsOf(r).size();
  }
  EXPECT_EQ(indexed, db.NumFacts());

  std::size_t blocks_indexed = 0;
  for (RelationId r = 0; r < db.schema().NumRelations(); ++r) {
    for (BlockId b : pdb.BlocksOf(r)) EXPECT_EQ(pdb.blocks()[b].relation, r);
    blocks_indexed += pdb.BlocksOf(r).size();
  }
  EXPECT_EQ(blocks_indexed, pdb.blocks().size());

  for (FactId f = 0; f < db.NumFacts(); ++f) {
    EXPECT_EQ(pdb.BlockOf(f), db.BlockOf(f));
  }

  // Every block is found by its own key; a fresh key is not.
  for (BlockId b = 0; b < pdb.blocks().size(); ++b) {
    const Block& block = pdb.blocks()[b];
    KeyView key{block.key.data(),
                static_cast<std::uint32_t>(block.key.size())};
    EXPECT_EQ(pdb.FindBlock(block.relation, key), b);
  }
  ElementId fresh[] = {0xfffffff0u};
  EXPECT_EQ(pdb.FindBlock(0, KeyView{fresh, 1}), PreparedDatabase::kNoBlock);
}

TEST(PreparedDatabaseTest, ComputeSolutionsMatchesPairwiseDefinition) {
  auto q = ParseQuery("R(x | y, x) R(y | x, u)");
  Rng rng(0x50105);
  Database db = SmallInstance(q, &rng);
  PreparedDatabase pdb(db);
  SolutionSet solutions = ComputeSolutions(q, pdb);
  RelationBinding binding(q, db);
  for (FactId a = 0; a < db.NumFacts(); ++a) {
    for (FactId b = 0; b < db.NumFacts(); ++b) {
      bool expected = IsSolution(q, binding, db, a, b);
      bool listed = std::binary_search(solutions.pairs.begin(),
                                       solutions.pairs.end(),
                                       std::make_pair(a, b));
      EXPECT_EQ(listed, expected) << a << " " << b;
    }
  }
}

// The acceptance bar for the engine layer: BatchSolver must produce
// bit-identical answers to per-database CertainSolver::Solve, across the
// dichotomy's dispatch classes and any thread count.
TEST(BatchSolverTest, MatchesSingleShotSolveOnRandomWorkloads) {
  for (const char* text : kCatalog) {
    auto q = ParseQuery(text);
    CertainSolver solver = MakeSolver(q);
    Rng rng(0xBA7C4);
    std::vector<Database> dbs;
    dbs.reserve(24);
    for (int i = 0; i < 24; ++i) dbs.push_back(SmallInstance(q, &rng));

    std::vector<SolverAnswer> expected;
    for (const Database& db : dbs) expected.push_back(solver.Solve(db));

    for (std::uint32_t threads : {1u, 2u, 4u}) {
      BatchOptions options;
      options.num_threads = threads;
      BatchSolver batch(solver, options);
      BatchStats stats;
      std::vector<SolverAnswer> actual = batch.SolveAll(dbs, &stats);
      ASSERT_EQ(actual.size(), expected.size());
      for (std::size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(actual[i].certain, expected[i].certain)
            << text << " threads=" << threads << " db#" << i;
        EXPECT_EQ(actual[i].algorithm, expected[i].algorithm)
            << text << " threads=" << threads << " db#" << i;
      }
      EXPECT_EQ(stats.queries, dbs.size());
      EXPECT_GT(stats.queries_per_sec, 0.0);
      EXPECT_LE(stats.threads_used, threads);
    }
  }
}

TEST(BatchSolverTest, RejectsDuplicateDatabasePointers) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  CertainSolver solver = MakeSolver(q);
  Database db(q.schema());
  db.AddFactStr(0, "a b");
  BatchSolver batch(solver, BatchOptions{2});
  std::vector<const Database*> twice{&db, &db};
  EXPECT_DEATH(batch.SolveAll(twice), "duplicate database pointer");
}

TEST(BatchSolverTest, EmptyBatch) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  CertainSolver solver = MakeSolver(q);
  BatchSolver batch(solver, BatchOptions{4});
  BatchStats stats;
  EXPECT_TRUE(batch.SolveAll(std::vector<const Database*>{}, &stats).empty());
  EXPECT_EQ(stats.queries, 0u);
}

TEST(SolverCreateTest, TypedErrorsInsteadOfExceptions) {
  auto q3 = ParseQuery("R(x | y) R(y | z)");
  SolverOptions unknown;
  unknown.forced_backend = "SAT";  // Names are case-sensitive.
  StatusOr<CertainSolver> bad_name = CertainSolver::Create(q3, unknown);
  ASSERT_FALSE(bad_name.ok());
  EXPECT_EQ(bad_name.status().code(), StatusCode::kUnknownBackend);

  SolverOptions unsupported;
  unsupported.forced_backend = "trivial";  // q3 is not one-atom-equivalent.
  StatusOr<CertainSolver> mismatch = CertainSolver::Create(q3, unsupported);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kCapabilityMismatch);

  StatusOr<CertainSolver> ok = CertainSolver::Create(q3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->backend().name(), "cert2");
}

TEST(SolverAlgorithmToString, RoundTripsExhaustively) {
  const SolverAlgorithm kAll[] = {
      SolverAlgorithm::kTrivialScan, SolverAlgorithm::kCert2,
      SolverAlgorithm::kCertK,       SolverAlgorithm::kCertKOrMatching,
      SolverAlgorithm::kExhaustive,  SolverAlgorithm::kSat,
  };
  for (SolverAlgorithm a : kAll) {
    std::string name = ToString(a);
    EXPECT_NE(name, "?");
    auto parsed = SolverAlgorithmFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, a) << name;
  }
  EXPECT_FALSE(SolverAlgorithmFromString("oracle").has_value());
}

// SolveAllReports answers must be bit-identical to SolveAll on healthy
// batches, with the report's extra provenance attached.
TEST(BatchSolverTest, ReportsMatchAnswersOnHealthyBatches) {
  auto q = ParseQuery("R(x | y, x) R(y | x, u)");
  CertainSolver solver = MakeSolver(q);
  Rng rng(0x5CA1E);
  std::vector<Database> dbs;
  for (int i = 0; i < 12; ++i) dbs.push_back(SmallInstance(q, &rng));

  BatchSolver batch(solver, BatchOptions{2});
  std::vector<SolverAnswer> answers = batch.SolveAll(dbs);
  BatchStats stats;
  std::vector<StatusOr<SolveReport>> reports =
      batch.SolveAllReports(dbs, &stats);
  ASSERT_EQ(reports.size(), answers.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    ASSERT_TRUE(reports[i].ok()) << reports[i].status().ToString();
    EXPECT_EQ(reports[i]->certain, answers[i].certain) << i;
    EXPECT_EQ(reports[i]->algorithm, answers[i].algorithm) << i;
    EXPECT_EQ(reports[i]->query_class, solver.classification().query_class);
    EXPECT_EQ(reports[i]->num_facts, dbs[i].NumFacts());
  }
  EXPECT_EQ(stats.queries, dbs.size());
}

TEST(SolverOptionsTest, ForcedBackendOverridesDispatch) {
  auto q3 = ParseQuery("R(x | y) R(y | z)");
  SolverOptions options;
  options.forced_backend = "exhaustive";
  CertainSolver solver = MakeSolver(q3, options);
  Database db(q3.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  SolverAnswer answer = solver.Solve(db);
  EXPECT_EQ(answer.algorithm, SolverAlgorithm::kExhaustive);
}

}  // namespace
}  // namespace cqa
