// Metamorphic relations of certain(q): transforms of the database that
// provably cannot change the answer must not change it —
//   - fact-order permutation (a database is a SET of facts),
//   - duplicate-fact insertion (set semantics),
//   - pure-noise facts on a relation the query never mentions.
// And after every transform, a non-certain answer from an Explain-capable
// backend must still carry a witness that VerifyWitness accepts from
// first principles.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/service.h"
#include "base/rng.h"
#include "gen/workloads.h"

namespace cqa {
namespace {

struct Row {
  std::string relation;
  std::vector<std::string> args;
};

std::vector<Row> RowsOf(const Database& db) {
  std::vector<Row> rows;
  for (FactId f = 0; f < db.NumFacts(); ++f) {
    if (!db.alive(f)) continue;
    Row row;
    FactRef fact = db.fact(f);
    row.relation = db.schema().Relation(fact.relation).name;
    for (ElementId el : fact.args) row.args.push_back(db.elements().Name(el));
    rows.push_back(std::move(row));
  }
  return rows;
}

Database BuildFromRows(const Schema& schema, const std::vector<Row>& rows) {
  Database db(schema);
  for (const Row& row : rows) {
    db.AddFactNamed(schema.Find(row.relation), row.args);
  }
  return db;
}

/// Solves and, when the answer is non-certain and the backend explains,
/// checks the witness from first principles. Returns the answer.
bool SolveAndVerify(Service* service, const CompiledQuery& q,
                    const Database& db, const char* label) {
  StatusOr<SolveReport> report = service->Solve(q, db);
  if (!report.ok()) {
    ADD_FAILURE() << label << ": " << report.status().ToString();
    return false;
  }
  if (!report->certain && report->witness.has_value()) {
    Status ok = VerifyWitness(q.query(), db, *report->witness);
    EXPECT_TRUE(ok.ok()) << label << ": " << ok.ToString() << "\n"
                         << db.ToString();
  }
  return report->certain;
}

struct MetamorphicCase {
  const char* query;
  const char* forced;  // nullptr: dichotomy dispatch.
};

const MetamorphicCase kCases[] = {
    {"R(x | y) R(y | z)", nullptr},
    {"R(x | y) R(y | z)", "exhaustive"},
    {"R(x | y) R(y | z)", "sat"},
    {"R(x, u | x, y) R(u, y | x, z)", nullptr},
    {"R(x | y, z) R(z | x, y)", "exhaustive"},
    {"R(x | y) R(y | y)", "trivial"},
    {"R1(x | y) R2(y | z)", nullptr},
};

TEST(MetamorphicTest, FactOrderPermutationIsInvariant) {
  Service service;
  for (const MetamorphicCase& c : kCases) {
    CompileOptions options;
    if (c.forced != nullptr) options.forced_backend = c.forced;
    StatusOr<CompiledQuery> q = service.Compile(c.query, options);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    Rng rng(0x3E7A0001);
    for (int round = 0; round < 30; ++round) {
      Database db = RandomInstance(q->query(),
                                   InstanceParams{16, 4, 0.6, 0.3}, &rng);
      bool base = SolveAndVerify(&service, *q, db, c.query);

      std::vector<Row> rows = RowsOf(db);
      for (int perm = 0; perm < 3; ++perm) {
        // Fisher–Yates with the deterministic Rng.
        for (std::size_t i = rows.size(); i > 1; --i) {
          std::swap(rows[i - 1], rows[rng.Below(i)]);
        }
        Database shuffled = BuildFromRows(q->query().schema(), rows);
        EXPECT_EQ(SolveAndVerify(&service, *q, shuffled, c.query), base)
            << c.query << " round " << round << " perm " << perm;
      }
    }
  }
}

TEST(MetamorphicTest, DuplicateInsertionIsInvariant) {
  Service service;
  for (const MetamorphicCase& c : kCases) {
    CompileOptions options;
    if (c.forced != nullptr) options.forced_backend = c.forced;
    StatusOr<CompiledQuery> q = service.Compile(c.query, options);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    Rng rng(0x3E7A0002);
    for (int round = 0; round < 30; ++round) {
      Database db = RandomInstance(q->query(),
                                   InstanceParams{16, 4, 0.6, 0.3}, &rng);
      bool base = SolveAndVerify(&service, *q, db, c.query);
      std::size_t size_before = db.NumFacts();

      // Re-adding existing facts must be a no-op (set semantics) both on
      // a raw Database...
      std::vector<Row> rows = RowsOf(db);
      for (int dup = 0; dup < 5 && !rows.empty(); ++dup) {
        const Row& row = rows[rng.Below(rows.size())];
        db.AddFactNamed(db.schema().Find(row.relation), row.args);
      }
      EXPECT_EQ(db.NumFacts(), size_before);
      EXPECT_EQ(SolveAndVerify(&service, *q, db, c.query), base);

      // ...and through the mutation API's incremental path.
      std::string name = "dup" + std::to_string(round) + c.query;
      if (c.forced != nullptr) name += c.forced;
      ASSERT_TRUE(service
                      .RegisterDatabase(name,
                                        BuildFromRows(q->query().schema(),
                                                      rows))
                      .ok());
      bool registered_base = false;
      {
        StatusOr<SolveReport> report = service.Solve(*q, name);
        ASSERT_TRUE(report.ok());
        registered_base = report->certain;
        EXPECT_EQ(registered_base, base);
      }
      for (int dup = 0; dup < 3 && !rows.empty(); ++dup) {
        const Row& row = rows[rng.Below(rows.size())];
        MutationStats stats;
        ASSERT_TRUE(
            service.InsertFacts(name, {{row.relation, row.args}}, &stats)
                .ok());
        EXPECT_EQ(stats.applied, 0u);
        EXPECT_EQ(stats.ignored_duplicates, 1u);
      }
      StatusOr<SolveReport> after = service.Solve(*q, name);
      ASSERT_TRUE(after.ok());
      EXPECT_EQ(after->certain, registered_base);
      // Nothing changed, so every component verdict comes from the cache.
      EXPECT_EQ(after->components_resolved, 0u);
      // The duplicate-insert no-ops must not have disturbed any
      // delta-maintained structure (data/audit.h).
      StatusOr<AuditReport> audit = service.AuditDatabase(name);
      ASSERT_TRUE(audit.ok()) << audit.status().ToString();
      ASSERT_TRUE(audit->ok()) << audit->ToString() << c.query;
      ASSERT_TRUE(service.DropDatabase(name).ok());
    }
  }
}

TEST(MetamorphicTest, NoiseOnUnusedRelationIsInvariant) {
  Service service;
  for (const MetamorphicCase& c : kCases) {
    CompileOptions options;
    if (c.forced != nullptr) options.forced_backend = c.forced;
    StatusOr<CompiledQuery> q = service.Compile(c.query, options);
    ASSERT_TRUE(q.ok()) << q.status().ToString();

    // A schema that also carries a relation the query never mentions.
    Schema wide;
    for (RelationId r = 0; r < q->query().schema().NumRelations(); ++r) {
      const RelationSchema& rel = q->query().schema().Relation(r);
      wide.AddRelation(rel.name, rel.arity, rel.key_len);
    }
    RelationId noise_rel = wide.AddRelation("ZNoise", 2, 1);

    Rng rng(0x3E7A0003);
    for (int round = 0; round < 30; ++round) {
      Database narrow = RandomInstance(q->query(),
                                       InstanceParams{16, 4, 0.6, 0.3},
                                       &rng);
      Database db = BuildFromRows(wide, RowsOf(narrow));
      bool base = SolveAndVerify(&service, *q, db, c.query);

      // Pure noise on the unused relation, including inconsistent blocks.
      for (int n = 0; n < 8; ++n) {
        std::vector<std::string> args = {
            "n" + std::to_string(rng.Below(4)),
            "n" + std::to_string(rng.Below(4))};
        db.AddFactNamed(noise_rel, args);
      }
      EXPECT_EQ(SolveAndVerify(&service, *q, db, c.query), base)
          << c.query << " round " << round;
    }
  }
}

}  // namespace
}  // namespace cqa
