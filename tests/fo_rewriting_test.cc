// Tests for the Koutris–Wijsen first-order rewriting evaluator on
// acyclic-attack-graph self-join-free queries.

#include <gtest/gtest.h>

#include "algo/exhaustive.h"
#include "base/rng.h"
#include "classify/attack_graph.h"
#include "classify/fo_rewriting.h"
#include "gen/workloads.h"
#include "query/query.h"

namespace cqa {
namespace {

TEST(FoRewriting, SingleAtomCertainIffSomeBlockAllMatches) {
  auto q = ParseQuery("R1(x | y, y)");
  Database db(q.schema());
  db.AddFactStr(0, "k a a");
  db.AddFactStr(0, "k b c");  // Does not match the y,y pattern.
  EXPECT_FALSE(CertainFO(q, db));
  db.AddFactStr(0, "m d d");  // Singleton block, matches.
  EXPECT_TRUE(CertainFO(q, db));
}

TEST(FoRewriting, TwoAtomJoinBasic) {
  auto q = ParseQuery("R1(x | y) R2(y | z)");
  ASSERT_EQ(ClassifySjf(q), SjfComplexity::kFirstOrder);
  Database db(q.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(1, "b c");
  EXPECT_TRUE(CertainFO(q, db));
  db.AddFactStr(0, "a z");  // Escape in the R1 block.
  EXPECT_FALSE(CertainFO(q, db));
}

TEST(FoRewriting, JoinSurvivesInconsistencyWhenAllContinuationsExist) {
  auto q = ParseQuery("R1(x | y) R2(y | z)");
  Database db(q.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "a c");  // Inconsistent R1 block {b, c}.
  db.AddFactStr(1, "b p");
  db.AddFactStr(1, "c q");
  EXPECT_TRUE(CertainFO(q, db));
}

class FoAgreesTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FoAgreesTest, MatchesEnumerationOnRandomInstances) {
  auto q = ParseQuery(GetParam());
  ASSERT_EQ(ClassifySjf(q), SjfComplexity::kFirstOrder) << GetParam();
  Rng rng(0xF0F0);
  int certain_count = 0;
  for (int round = 0; round < 50; ++round) {
    InstanceParams params;
    params.num_facts = 14;
    params.domain_size = 3;
    Database db = RandomInstance(q, params, &rng);
    if (db.CountRepairs() > 1e6) continue;
    bool expected = CertainByEnumeration(q, db);
    certain_count += expected ? 1 : 0;
    EXPECT_EQ(CertainFO(q, db), expected) << db.ToString();
  }
  EXPECT_GT(certain_count, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AcyclicQueries, FoAgreesTest,
    ::testing::Values("R1(x | y) R2(y | z)",
                      "R1(x | y) R2(y | z) R3(z | w)",
                      "R1(x | y, z) R2(y | w)",
                      "R1(x | y) R2(x | z)",
                      "R1(x, y | z) R2(z | w)",
                      "R1(x | y, y)"));

TEST(FoRewriting, ThreeAtomPathChain) {
  auto q = ParseQuery("R1(x | y) R2(y | z) R3(z | w)");
  Database db(q.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(1, "b c");
  db.AddFactStr(2, "c d");
  EXPECT_TRUE(CertainFO(q, db));
  db.AddFactStr(1, "b c2");  // Fork in the middle...
  EXPECT_FALSE(CertainFO(q, db));
  db.AddFactStr(2, "c2 d2");  // ...patched by a continuation.
  EXPECT_TRUE(CertainFO(q, db));
}

}  // namespace
}  // namespace cqa
