// Tests for the two reductions: Proposition 4.1 (sjf -> self-join) and the
// Section 9 SAT gadget with Lemma 9.2 (EXP-F2).

#include <gtest/gtest.h>

#include "algo/exhaustive.h"
#include "base/rng.h"
#include "gen/workloads.h"
#include "query/eval.h"
#include "query/query.h"
#include "reduction/sat_reduction.h"
#include "reduction/sjf_reduction.h"
#include "sat/dpll.h"
#include "sat/gen.h"
#include "tripath/search.h"

namespace cqa {
namespace {

constexpr const char* kQ1 = "R(x, u | x, v) R(v, y | u, y)";
constexpr const char* kQ2 = "R(x, u | x, y) R(u, y | x, z)";
constexpr const char* kQ3 = "R(x | y) R(y | z)";

TEST(SjfReduction, MakeSjfQueryRenamesRelations) {
  auto q = ParseQuery(kQ2);
  auto sjf = MakeSjfQuery(q);
  EXPECT_TRUE(sjf.IsSelfJoinFree());
  EXPECT_EQ(sjf.schema().NumRelations(), 2u);
  EXPECT_EQ(sjf.ToString(), "R1(x, u | x, y) R2(u, y | x, z)");
}

TEST(SjfReduction, TranslationPreservesBlocks) {
  auto q = ParseQuery(kQ3);
  auto sjf = MakeSjfQuery(q);
  Database sdb(sjf.schema());
  sdb.AddFactStr(0, "k a");
  sdb.AddFactStr(0, "k b");  // Same R1 block.
  sdb.AddFactStr(1, "k a");  // R2 fact with the same key value.
  Database tdb = TranslateSjfDatabase(q, sdb);
  EXPECT_EQ(tdb.NumFacts(), 3u);
  // R1-facts stay key-equal to each other but not to the R2-fact (the key
  // carries the atom's variable annotation).
  EXPECT_TRUE(tdb.KeyEqual(0, 1));
  EXPECT_FALSE(tdb.KeyEqual(0, 2));
}

class SjfEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SjfEquivalenceTest, CertainAgreesThroughTranslation) {
  auto q = ParseQuery(GetParam());
  auto sjf = MakeSjfQuery(q);
  Rng rng(0x51F);
  int certain_count = 0;
  for (int round = 0; round < 40; ++round) {
    InstanceParams params;
    params.num_facts = 12;
    params.domain_size = 3;
    Database sdb = RandomInstance(sjf, params, &rng);
    Database tdb = TranslateSjfDatabase(q, sdb);
    bool sjf_certain = CertainByEnumeration(sjf, sdb);
    bool self_certain = ExhaustiveCertain(q, tdb);
    certain_count += sjf_certain ? 1 : 0;
    EXPECT_EQ(sjf_certain, self_certain) << sdb.ToString();
  }
  EXPECT_GT(certain_count, 0);
}

INSTANTIATE_TEST_SUITE_P(Catalog, SjfEquivalenceTest,
                         ::testing::Values(kQ1, kQ2, kQ3,
                                           "R(x | y, z) R(z | x, y)"));

// --- Section 9 gadget -------------------------------------------------------

class SatGadgetTest : public ::testing::Test {
 protected:
  SatGadgetTest()
      : q2_(ParseQuery(kQ2)), nice_(FindNiceForkTripath(q2_)) {}

  ConjunctiveQuery q2_;
  std::optional<FoundTripath> nice_;
};

TEST_F(SatGadgetTest, NiceForkExistsForQ2) {
  ASSERT_TRUE(nice_.has_value());
  EXPECT_TRUE(nice_->validation.nice);
}

TEST_F(SatGadgetTest, Figure2GadgetStructure) {
  ASSERT_TRUE(nice_.has_value());
  CnfFormula phi = Figure2Formula();
  SatGadget gadget = BuildSatGadget(q2_, *nice_, phi);
  // 3 clauses x 3 literals = 9 tripath copies.
  EXPECT_EQ(gadget.literal_fact.size(), 9u);
  // Every block has at least two facts after padding.
  for (const Block& b : gadget.db.blocks()) {
    EXPECT_GE(b.facts.size(), 2u);
  }
  // Clause blocks have exactly three facts.
  for (std::uint32_t c = 0; c < 3; ++c) {
    FactId lf = gadget.literal_fact.at({c, phi.clauses[c][0].var});
    EXPECT_EQ(gadget.db.blocks()[gadget.db.BlockOf(lf)].facts.size(), 3u);
  }
}

TEST_F(SatGadgetTest, Lemma92OnFigure2Formula) {
  ASSERT_TRUE(nice_.has_value());
  CnfFormula phi = Figure2Formula();
  ASSERT_TRUE(SolveDpll(phi).satisfiable);
  SatGadget gadget = BuildSatGadget(q2_, *nice_, phi);
  // Satisfiable => some repair falsifies q => not certain.
  EXPECT_FALSE(ExhaustiveCertain(q2_, gadget.db));
}

TEST_F(SatGadgetTest, Lemma92OnUnsatFormula) {
  ASSERT_TRUE(nice_.has_value());
  // By Tovey's theorem every 3-CNF with <= 3 occurrences per variable is
  // satisfiable, so unsatisfiable reduction-ready formulas need 2-literal
  // clauses. This one forces b, then c, then both d and ~d:
  //   (a|b)(~a|b)(~b|c)(~c|d)(~c|~d)
  // with occurrence profile a:2, b:3, c:3, d:2, both polarities each.
  CnfFormula phi;
  phi.num_vars = 4;
  auto L = [](std::uint32_t v, bool pos) { return Literal{v, pos}; };
  phi.clauses = {
      {L(0, true), L(1, true)},   {L(0, false), L(1, true)},
      {L(1, false), L(2, true)},  {L(2, false), L(3, true)},
      {L(2, false), L(3, false)},
  };
  ASSERT_TRUE(phi.IsReductionReady());
  ASSERT_FALSE(SolveDpll(phi).satisfiable);
  SatGadget gadget = BuildSatGadget(q2_, *nice_, phi);
  EXPECT_TRUE(ExhaustiveCertain(q2_, gadget.db)) << phi.ToString();
}

TEST_F(SatGadgetTest, Lemma92RandomizedBothDirections) {
  ASSERT_TRUE(nice_.has_value());
  Rng rng(0x92);
  int sat_seen = 0;
  int unsat_seen = 0;
  for (int round = 0; round < 12; ++round) {
    CnfFormula phi = RandomReductionReady3Sat(4 + rng.Below(3), 8, &rng);
    bool satisfiable = SolveDpll(phi).satisfiable;
    (satisfiable ? sat_seen : unsat_seen) += 1;
    SatGadget gadget = BuildSatGadget(q2_, *nice_, phi);
    EXPECT_EQ(!satisfiable, ExhaustiveCertain(q2_, gadget.db))
        << phi.ToString();
  }
  EXPECT_GT(sat_seen, 0);
}

TEST_F(SatGadgetTest, GadgetSizeLinearInFormula) {
  ASSERT_TRUE(nice_.has_value());
  Rng rng(0x93);
  CnfFormula small = RandomReductionReady3Sat(4, 6, &rng);
  CnfFormula large = RandomReductionReady3Sat(10, 16, &rng);
  std::size_t occurrences_small = 0;
  for (auto c : small.OccurrenceCounts()) occurrences_small += c;
  std::size_t occurrences_large = 0;
  for (auto c : large.OccurrenceCounts()) occurrences_large += c;
  SatGadget g_small = BuildSatGadget(q2_, *nice_, small);
  SatGadget g_large = BuildSatGadget(q2_, *nice_, large);
  // Facts per literal occurrence is a constant (|Theta| + padding share).
  double per_small =
      static_cast<double>(g_small.db.NumFacts()) / occurrences_small;
  double per_large =
      static_cast<double>(g_large.db.NumFacts()) / occurrences_large;
  EXPECT_NEAR(per_small, per_large, per_small * 0.5);
}

}  // namespace
}  // namespace cqa
