// Parser error reporting: ParseQueryOrStatus returns typed
// kInvalidQuery statuses whose messages locate the error as line:column
// and carry a caret snippet; the ParseQuery shim throws the same message.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "query/query.h"

namespace cqa {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(ParserStatus, WellFormedQueriesParse) {
  for (const char* text : {"R(x | y) R(y | z)",
                           "R(x, u | x, y) R(u, y | x, z)",
                           "R(x | y, z) R(z | x, y)",
                           "Emp(x | d, y) Emp(y | e, z)"}) {
    StatusOr<ConjunctiveQuery> parsed = ParseQueryOrStatus(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->NumAtoms(), 2u);
  }
}

TEST(ParserStatus, MalformedQueriesReturnInvalidQuery) {
  for (const char* text : {"", "R(x", "R()", "R(x,,y)", "1R(x)",
                           "R(x | y) R(x | y, z)", "R(x | y) R(x, y |)"}) {
    StatusOr<ConjunctiveQuery> parsed = ParseQueryOrStatus(text);
    ASSERT_FALSE(parsed.ok()) << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidQuery) << text;
    EXPECT_TRUE(Contains(parsed.status().message(), "query parse error"))
        << parsed.status().message();
  }
}

TEST(ParserStatus, ReportsLineAndColumn) {
  // The second atom has no '(': the error points at its start, which is
  // column 10 of line 1 (offset 9).
  StatusOr<ConjunctiveQuery> parsed = ParseQueryOrStatus("R(x | y) Rx");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(Contains(parsed.status().message(), "line 1, column 10"))
      << parsed.status().message();
  EXPECT_TRUE(Contains(parsed.status().message(), "expected '('"))
      << parsed.status().message();
}

TEST(ParserStatus, ReportsLinesPastTheFirst) {
  // Multi-line query text: the unbalanced parenthesis is on line 2; its
  // argument list starts at column 3.
  StatusOr<ConjunctiveQuery> parsed =
      ParseQueryOrStatus("R(x | y)\nR(y | z");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(Contains(parsed.status().message(), "line 2, column 3"))
      << parsed.status().message();
  EXPECT_TRUE(Contains(parsed.status().message(), "unbalanced parentheses"))
      << parsed.status().message();
  // The caret snippet shows the offending line only.
  EXPECT_FALSE(Contains(parsed.status().message(), "\n  R(x | y)\n"))
      << parsed.status().message();
}

TEST(ParserStatus, CaretPointsAtTheOffendingColumn) {
  StatusOr<ConjunctiveQuery> parsed = ParseQueryOrStatus("R(x | y) Sx");
  ASSERT_FALSE(parsed.ok());
  const std::string& message = parsed.status().message();
  // Snippet line, then a caret line whose '^' sits under column 10
  // (the 'S' of the atom missing its parenthesis).
  EXPECT_TRUE(Contains(message, "\n  R(x | y) Sx\n")) << message;
  std::string caret_line = "\n  " + std::string(9, ' ') + "^";
  EXPECT_TRUE(Contains(message, caret_line)) << message;
}

TEST(ParserStatus, SignatureDisagreementNamesTheRelation) {
  StatusOr<ConjunctiveQuery> parsed =
      ParseQueryOrStatus("R(x | y) R(x | y, z)");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(Contains(parsed.status().message(),
                       "atoms over 'R' disagree on signature"))
      << parsed.status().message();
}

TEST(ParserStatus, TooManyVariables) {
  std::string text = "R(";
  for (int i = 0; i < 65; ++i) {
    if (i > 0) text += ", ";
    text += "v" + std::to_string(i);
  }
  text += ")";
  StatusOr<ConjunctiveQuery> parsed = ParseQueryOrStatus(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(Contains(parsed.status().message(), "more than 64 variables"))
      << parsed.status().message();
}

TEST(ParserStatus, ThrowingShimMatchesStatusMessage) {
  StatusOr<ConjunctiveQuery> parsed = ParseQueryOrStatus("R(x");
  ASSERT_FALSE(parsed.ok());
  try {
    ParseQuery("R(x");
    FAIL() << "ParseQuery did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(parsed.status().message(), e.what());
  }
}

}  // namespace
}  // namespace cqa
