// Concurrency harness for the deferred component-maintenance path
// (engine/incremental.h): mutations now *enqueue* union-find deltas under
// the per-database exclusive lock and the next solve/audit flushes them,
// so insert/delete batches touching disjoint q-connected components
// overlap instead of serializing on partition maintenance.
//
// Each worker thread owns a private element namespace ("t<i>_..."), so
// its facts can never share a block or a solution with another thread's:
// the threads' batches are component-disjoint by construction, which
// makes the final state independent of interleaving — exactly the seed
// facts plus every thread's net surviving inserts (linearizability
// against a serial shadow model). A deep audit after every batch forces
// flush-vs-mutate and flush-vs-solve interleavings under the new
// kComponents lock; TSan runs this file in the concurrency shard.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "base/check.h"
#include "data/audit.h"
#include "query/query.h"

namespace cqa {
namespace {

constexpr const char* kQuery = "R(x | y) R(y | z)";

std::vector<FactSpec> ChainBatch(int thread_id, int round) {
  // A 3-fact chain with a blockmate, confined to the thread's namespace:
  // enough structure for nontrivial components, no cross-thread contact.
  std::string p = "t" + std::to_string(thread_id) + "_r" +
                  std::to_string(round) + "_";
  return {
      {"R", {p + "a", p + "b"}},
      {"R", {p + "b", p + "c"}},
      {"R", {p + "b", p + "d"}},  // blockmate of (b, c) under key b
      {"R", {p + "c", p + "a"}},
  };
}

TEST(MutationConcurrencyTest, DisjointComponentBatchesLinearize) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 14;

  Service service;
  StatusOr<CompiledQuery> q = service.Compile(kQuery);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  // Seed facts live in their own namespace too, so they survive as-is.
  Database seed(ParseQuery(kQuery).schema());
  seed.AddFactStr(0, "seed_a seed_b");
  seed.AddFactStr(0, "seed_b seed_c");
  seed.AddFactStr(0, "seed_b seed_d");
  ASSERT_TRUE(service.RegisterDatabase("db", Database(seed)).ok());

  // Per-thread serial shadow: which of this thread's batches survive.
  std::vector<std::vector<int>> surviving(kThreads);

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &service, &q, &surviving] {
      std::vector<int> alive;
      for (int round = 0; round < kRounds; ++round) {
        // Mostly insert; every third round retract the oldest batch, so
        // blocks shrink, facts tombstone, and pending deletes pile onto
        // pending inserts in the same queue.
        bool do_delete = round % 3 == 2 && !alive.empty();
        Status applied;
        if (do_delete) {
          int victim = alive.front();
          alive.erase(alive.begin());
          applied = service.DeleteFacts("db", ChainBatch(t, victim));
        } else {
          alive.push_back(round);
          applied = service.InsertFacts("db", ChainBatch(t, round));
        }
        ASSERT_TRUE(applied.ok()) << applied.ToString();

        // Interleave solves so flushes race cache passes, not just
        // other flushes.
        StatusOr<SolveReport> report = service.Solve(*q, "db");
        ASSERT_TRUE(report.ok()) << report.status().ToString();

        // Deep audit after every batch: repartitions from scratch and
        // compares against the incrementally maintained (and freshly
        // flushed) component structure.
        StatusOr<AuditReport> audit = service.AuditDatabase("db");
        ASSERT_TRUE(audit.ok()) << audit.status().ToString();
        EXPECT_EQ(audit->total_violations, 0u) << audit->ToString();
      }
      surviving[static_cast<std::size_t>(t)] = alive;
    });
  }
  for (std::thread& worker : workers) worker.join();

  // Serial shadow model: replay every thread's surviving batches, in any
  // order (they are disjoint), onto the seed. The concurrent history
  // must have linearized to exactly this state.
  Database expected(seed);
  std::size_t expected_count = 3;
  for (int t = 0; t < kThreads; ++t) {
    for (int round : surviving[static_cast<std::size_t>(t)]) {
      for (const FactSpec& spec : ChainBatch(t, round)) {
        std::string row = spec.args[0] + " " + spec.args[1];
        ASSERT_NE(expected.AddFactStr(0, row), Database::kNoFact);
        ++expected_count;
      }
    }
  }

  StatusOr<SolveReport> final_report = service.Solve(*q, "db");
  ASSERT_TRUE(final_report.ok());
  EXPECT_EQ(final_report->num_facts, expected_count);

  // Fresh oracle service over the shadow database: identical verdict.
  Service oracle;
  StatusOr<CompiledQuery> oq = oracle.Compile(kQuery);
  ASSERT_TRUE(oq.ok());
  ASSERT_TRUE(oracle.RegisterDatabase("db", std::move(expected)).ok());
  StatusOr<SolveReport> oracle_report = oracle.Solve(*oq, "db");
  ASSERT_TRUE(oracle_report.ok());
  EXPECT_EQ(final_report->certain, oracle_report->certain);
  EXPECT_EQ(final_report->num_blocks, oracle_report->num_blocks);

  StatusOr<AuditReport> final_audit = service.AuditDatabase("db");
  ASSERT_TRUE(final_audit.ok());
  EXPECT_EQ(final_audit->total_violations, 0u) << final_audit->ToString();
}

TEST(MutationConcurrencyTest, SolversOnlyFlushTheirOwnQueues) {
  // Two compiled queries against one database mean two incremental
  // solvers, each with a private pending queue. Mutations fan out to
  // both; a solve through one must flush only its own and still answer
  // correctly, leaving the other's queue to its own next solve.
  Service service;
  StatusOr<CompiledQuery> q1 = service.Compile(kQuery);
  StatusOr<CompiledQuery> q2 = service.Compile("R(x | y) R(y | x)");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());

  Database seed(ParseQuery(kQuery).schema());
  seed.AddFactStr(0, "a b");
  ASSERT_TRUE(service.RegisterDatabase("db", std::move(seed)).ok());
  // Materialize both solvers before mutating.
  ASSERT_TRUE(service.Solve(*q1, "db").ok());
  ASSERT_TRUE(service.Solve(*q2, "db").ok());

  constexpr int kThreads = 3;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &service, &q1, &q2] {
      for (int round = 0; round < 20; ++round) {
        std::string a = "t" + std::to_string(t) + "x" + std::to_string(round);
        std::string b = "t" + std::to_string(t) + "y" + std::to_string(round);
        ASSERT_TRUE(
            service.InsertFacts("db", {{"R", {a, b}}, {"R", {b, a}}}).ok());
        // Alternate which solver gets to flush first.
        const CompiledQuery& first = round % 2 == 0 ? *q1 : *q2;
        const CompiledQuery& second = round % 2 == 0 ? *q2 : *q1;
        ASSERT_TRUE(service.Solve(first, "db").ok());
        ASSERT_TRUE(service.Solve(second, "db").ok());
        if (round % 2 == 1) {
          ASSERT_TRUE(
              service.DeleteFacts("db", {{"R", {a, b}}, {"R", {b, a}}}).ok());
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  StatusOr<AuditReport> audit = service.AuditDatabase("db");
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->total_violations, 0u) << audit->ToString();
  StatusOr<SolveReport> r1 = service.Solve(*q1, "db");
  StatusOr<SolveReport> r2 = service.Solve(*q2, "db");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // 3 threads x 20 rounds x 2 facts inserted, half the rounds deleted.
  EXPECT_EQ(r1->num_facts, 1u + 3u * 20u);
}

}  // namespace
}  // namespace cqa
